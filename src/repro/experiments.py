"""High-level experiment assembly: one config object -> one RunResult.

This is the entry point examples and benchmarks use.  An
:class:`ExperimentSpec` names a dataset, a partition scheme, a
heterogeneity profile, a model preset and a method; :func:`run_experiment`
assembles the substrate (data, devices, trainer, server) and runs it on the
virtual clock.

Reduced-scale defaults: the paper runs 100 devices / 100-150 rounds on a
GPU fleet; this box has one CPU core.  Specs default to bench-scale values
and every paper-scale value remains one field away (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any

import numpy as np

import repro.baselines  # noqa: F401  (registers the baseline methods)
import repro.core.fedhisyn  # noqa: F401  (registers fedhisyn)
from repro.compression import make_codec
from repro.core.aggregation import AGGREGATORS
from repro.core.async_server import STALENESS_DECAYS
from repro.core.registry import METHOD_CONFIGS, METHOD_SERVERS, get_method
from repro.core.selection import SELECTION_POLICIES, make_policy
from repro.core.server import FederatedServer
from repro.datasets import make_dataset, partition_by_name, train_test_split
from repro.datasets.core import ClassificationDataset
from repro.datasets.registry import DATASETS
from repro.device import LocalTrainer, make_fleet, unit_times_from_counts, unit_times_from_ratio
from repro.device.heterogeneity import sample_unit_counts
from repro.env.registry import make_environment
from repro.faults import make_fault_model
from repro.nn.layers import Flatten
from repro.nn.models import Sequential, paper_cnn, paper_mlp
from repro.transport import make_transport
from repro.utils.config import validate_fraction, validate_positive
from repro.utils.logging import RunLogger

__all__ = [
    "ExperimentSpec",
    "FLEET_PROFILES",
    "build_model",
    "build_experiment",
    "run_experiment",
    "METHODS",
]

#: Live views over :mod:`repro.core.registry` — ``"fedavg" in METHODS``,
#: ``sorted(METHODS)`` and ``METHODS[name]`` behave exactly like the old
#: hand-maintained dicts, but a ``@register_method`` class shows up in both
#: without touching this module.
METHODS = METHOD_SERVERS
_METHOD_CONFIGS = METHOD_CONFIGS

_PARTITIONS = ("iid", "contiguous", "dirichlet", "shard")

#: Model size presets.  "paper" is the architecture of Section 6.1 verbatim;
#: "small" shrinks widths for the single-core benchmark budget while keeping
#: the same depth/structure.
MODEL_PRESETS: dict[str, dict[str, Any]] = {
    "paper": {"mlp_hidden": (200, 100), "cnn_channels": 64, "cnn_fc": (394, 192)},
    "small": {"mlp_hidden": (48, 24), "cnn_channels": 8, "cnn_fc": (48, 24)},
}

#: Fleet-scale presets: one name pins the population shape (device count,
#: dataset size, realistic participation for that scale).  A profile is a
#: *sweep axis* like any other spec field — ``--grid
#: fleet_profile=bench,city`` compares the same method at lab scale and at
#: city scale.  The struct-of-arrays device layer keeps per-round cost
#: O(participants), so even "metro" stays a laptop-sized run.
FLEET_PROFILES: dict[str, dict[str, Any]] = {
    "bench": {"num_devices": 20, "num_samples": 2000, "participation": 1.0},
    "lab": {"num_devices": 100, "num_samples": 10_000, "participation": 1.0},
    "campus": {"num_devices": 1_000, "num_samples": 20_000, "participation": 0.5},
    "city": {"num_devices": 5_000, "num_samples": 50_000, "participation": 0.1},
    "metro": {"num_devices": 20_000, "num_samples": 100_000, "participation": 0.02},
    # Million-device runs: contiguous shards alias the dataset block (no
    # gather, no per-device index copies), participation keeps the active
    # cohort around a thousand, and the small test fraction keeps eval off
    # the critical path.  Pairs with the async servers' batched events —
    # see the "million-device runs" quickstart in the README.
    "mega": {
        "num_devices": 1_000_000,
        "num_samples": 1_100_000,
        "participation": 0.001,
        "partition": "contiguous",
        "test_fraction": 0.005,
    },
}


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one training run.

    Specs are plain data: :meth:`to_dict`/:meth:`from_dict` round-trip
    losslessly through JSON, which is what the campaign runner's on-disk
    cache and its worker processes rely on.  ``__post_init__`` validates
    every field so a bad grid value fails at sweep-expansion time, not
    twenty minutes into a campaign.
    """

    method: str = "fedhisyn"
    dataset: str = "mnist_like"
    num_samples: int = 2000
    num_devices: int = 20
    partition: str = "dirichlet"  # "iid" | "dirichlet" | "shard"
    beta: float = 0.3
    participation: float = 1.0
    # Heterogeneity: either unit counts in [units_low, units_high] (paper
    # mode) or an exact ratio H (Fig. 7 mode, takes precedence if set).
    units_low: int = 1
    units_high: int = 10
    het_ratio: float | None = None
    rounds: int = 20
    local_epochs: int = 1
    lr: float = 0.1
    batch_size: int = 50
    eval_every: int = 1
    # Virtual-time-indexed eval checkpoints every this many time units
    # (any method; the scheduler's eval_checkpoint events) — the
    # time-to-accuracy sampling process.  None = round-end evals only.
    eval_time_every: float | None = None
    model_preset: str = "small"
    model_family: str | None = None  # default: the dataset registry's family
    test_fraction: float = 0.2
    seed: int = 0
    # Device-selection policy (repro.core.selection); None keeps the
    # server's built-in Bernoulli(participation) sampling.
    selection: str | None = None
    selection_fraction: float | None = None  # policy fraction; default: participation
    # Simulated world (repro.env): named preset plus keyword overrides.
    # "ideal" reproduces the paper's semantics bit-for-bit.
    env: str = "ideal"
    env_kwargs: dict[str, Any] = field(default_factory=dict)
    # Fleet-scale preset (FLEET_PROFILES): supplies defaults for the
    # fields it defines (num_devices/num_samples/participation).  A field
    # the caller moved off its dataclass default keeps the explicit value
    # — so a grid over e.g. participation still varies under a profile,
    # and re-validation (campaign `replace`, JSON round-trips) never
    # claws a swept value back to the preset.
    fleet_profile: str | None = None
    # Async-family knobs (fedasync/fedbuff), sweepable like any field;
    # silently ignored by methods whose config does not define them, so a
    # campaign grid can mix sync and async methods on one axis set.
    staleness_decay: str | None = None
    buffer_goal: int | None = None
    method_kwargs: dict[str, Any] = field(default_factory=dict)
    # Update compression (repro.compression): named codec plus keyword
    # overrides.  "none" reproduces dense transfers bit-for-bit.
    codec: str = "none"
    codec_kwargs: dict[str, Any] = field(default_factory=dict)
    # Robust aggregation for FedAvg-family rounds (repro.core.aggregation);
    # None keeps each method's built-in rule.
    aggregator: str | None = None
    # Fault injection (repro.faults): named model plus keyword overrides.
    # "none" is the zero-overhead null model (bit-identical to the seed
    # behavior).  Fault-aware methods: fedavg/fedprox (barrier rounds) and
    # fedasync/fedbuff (event loop); other methods ignore the model.
    faults: str = "none"
    fault_kwargs: dict[str, Any] = field(default_factory=dict)
    # Sync-round fault tolerance: cut the round at this virtual-time
    # deadline (late uploads are dropped, the round is charged the
    # deadline) and over-sample participants by this margin to compensate.
    round_deadline: float | None = None
    over_select: float | None = None
    # Async upload retransmission budget (fedasync/fedbuff); None keeps
    # the method config's default.
    max_retries: int | None = None
    # Transport backend (repro.transport): "sim" executes everything
    # in-process (bit-identical to pre-transport runs); "live" runs the
    # round loop as real OS worker processes over loopback UDP.
    transport: str = "sim"
    transport_kwargs: dict[str, Any] = field(default_factory=dict)
    # Batched cross-device training (repro.device.batched): "auto" trains a
    # round's cohorts as stacked GEMMs when the model allows it (falling back
    # to the sequential path otherwise), "off" forces per-device training.
    # An execution strategy, not a semantic knob — sweepable to prove it.
    device_batching: str = "auto"

    def __post_init__(self) -> None:
        if self.fleet_profile is not None:
            profile = FLEET_PROFILES.get(self.fleet_profile)
            if profile is None:
                raise ValueError(
                    f"fleet_profile must be one of {sorted(FLEET_PROFILES)}, "
                    f"got {self.fleet_profile!r}"
                )
            defaults = {
                f.name: f.default for f in fields(self) if f.name in profile
            }
            for key, value in profile.items():
                if getattr(self, key) == defaults[key]:
                    setattr(self, key, value)
        validate_positive(self.num_samples, "num_samples")
        validate_positive(self.num_devices, "num_devices")
        validate_positive(self.rounds, "rounds")
        validate_positive(self.local_epochs, "local_epochs")
        validate_positive(self.lr, "lr")
        validate_positive(self.batch_size, "batch_size")
        validate_positive(self.eval_every, "eval_every")
        validate_positive(self.beta, "beta")
        validate_positive(self.units_low, "units_low")
        validate_fraction(self.participation, "participation")
        validate_fraction(self.test_fraction, "test_fraction")
        if self.partition not in _PARTITIONS:
            raise ValueError(
                f"partition must be one of {_PARTITIONS}, got {self.partition!r}"
            )
        if self.units_high < self.units_low:
            raise ValueError(
                f"units_high ({self.units_high}) must be >= units_low "
                f"({self.units_low})"
            )
        if self.het_ratio is not None and self.het_ratio < 1.0:
            raise ValueError(f"het_ratio must be >= 1, got {self.het_ratio}")
        if self.model_preset not in MODEL_PRESETS:
            raise ValueError(
                f"model_preset must be one of {sorted(MODEL_PRESETS)}, "
                f"got {self.model_preset!r}"
            )
        if self.model_family not in (None, "mlp", "cnn"):
            raise ValueError(
                f"model_family must be None, 'mlp' or 'cnn', "
                f"got {self.model_family!r}"
            )
        if self.selection is not None and self.selection not in SELECTION_POLICIES:
            raise ValueError(
                f"selection must be one of {sorted(SELECTION_POLICIES)}, "
                f"got {self.selection!r}"
            )
        if self.selection_fraction is not None:
            validate_fraction(self.selection_fraction, "selection_fraction")
        if self.eval_time_every is not None:
            validate_positive(self.eval_time_every, "eval_time_every")
        if (
            self.staleness_decay is not None
            and self.staleness_decay not in STALENESS_DECAYS
        ):
            raise ValueError(
                f"staleness_decay must be one of {STALENESS_DECAYS}, "
                f"got {self.staleness_decay!r}"
            )
        if self.buffer_goal is not None:
            validate_positive(self.buffer_goal, "buffer_goal")
        if not isinstance(self.method_kwargs, dict):
            raise ValueError(
                f"method_kwargs must be a dict, got {type(self.method_kwargs).__name__}"
            )
        if not isinstance(self.env_kwargs, dict):
            raise ValueError(
                f"env_kwargs must be a dict, got {type(self.env_kwargs).__name__}"
            )
        if not isinstance(self.codec_kwargs, dict):
            raise ValueError(
                f"codec_kwargs must be a dict, got {type(self.codec_kwargs).__name__}"
            )
        if self.aggregator is not None and self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS}, got {self.aggregator!r}"
            )
        if not isinstance(self.fault_kwargs, dict):
            raise ValueError(
                f"fault_kwargs must be a dict, got {type(self.fault_kwargs).__name__}"
            )
        if self.round_deadline is not None:
            validate_positive(self.round_deadline, "round_deadline")
        if self.over_select is not None and self.over_select < 0:
            raise ValueError(
                f"over_select must be >= 0, got {self.over_select}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not isinstance(self.transport_kwargs, dict):
            raise ValueError(
                "transport_kwargs must be a dict, "
                f"got {type(self.transport_kwargs).__name__}"
            )
        if self.device_batching not in ("auto", "off"):
            raise ValueError(
                f"device_batching must be 'auto' or 'off', "
                f"got {self.device_batching!r}"
            )
        # Raises ValueError for an unknown preset or bad override keys, so
        # a mistyped --env/--grid value fails at spec time, not mid-run.
        make_environment(self.env, **self.env_kwargs)
        # Same fail-early contract for the codec, fault and transport axes;
        # the backend additionally vets the *whole* spec (live supports
        # only the sync FedAvg family on drop-free, fault-free worlds).
        make_codec(self.codec, **self.codec_kwargs)
        make_fault_model(self.faults, **self.fault_kwargs)
        make_transport(self.transport, **self.transport_kwargs).validate_spec(self)

    def with_method(self, method: str, **method_kwargs) -> "ExperimentSpec":
        """Same experiment, different algorithm — for method comparisons."""
        return replace(self, method=method, method_kwargs=dict(method_kwargs))

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serializable dict (the campaign cache/worker format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ExperimentSpec field(s): {unknown}")
        return cls(**data)


def build_model(
    dataset: ClassificationDataset,
    family: str,
    preset: str = "small",
    seed: int | np.random.Generator | None = 0,
) -> Sequential:
    """Construct the paper's model family sized by ``preset``.

    An MLP applied to image data gets a Flatten front; a CNN requires image
    data.
    """
    sizes = MODEL_PRESETS[preset]
    if family == "mlp":
        model = paper_mlp(
            dataset.flat_features,
            dataset.num_classes,
            seed=seed,
            hidden=sizes["mlp_hidden"],
        )
        if len(dataset.feature_shape) > 1:
            model.layers.insert(0, Flatten())
        return model
    if family == "cnn":
        if len(dataset.feature_shape) != 3:
            raise ValueError("cnn family requires (C, H, W) data")
        c, h, w = dataset.feature_shape
        if h != w:
            raise ValueError(f"cnn expects square images, got {h}x{w}")
        return paper_cnn(
            c,
            h,
            dataset.num_classes,
            seed=seed,
            conv_channels=sizes["cnn_channels"],
            fc_sizes=sizes["cnn_fc"],
        )
    raise ValueError(f"unknown model family {family!r}")


def build_experiment(
    spec: ExperimentSpec, logger: RunLogger | None = None
) -> FederatedServer:
    """Assemble dataset, devices, trainer and server for ``spec``."""
    entry = get_method(spec.method)  # raises ValueError for unknown methods

    dataset = make_dataset(spec.dataset, num_samples=spec.num_samples, seed=spec.seed)
    train_set, test_set = train_test_split(
        dataset, spec.test_fraction, seed=spec.seed + 1
    )

    parts = partition_by_name(
        spec.partition,
        train_set,
        spec.num_devices,
        seed=spec.seed + 2,
        **({"beta": spec.beta} if spec.partition == "dirichlet" else {}),
    )

    if spec.het_ratio is not None:
        unit_times = unit_times_from_ratio(
            spec.num_devices, spec.het_ratio, seed=spec.seed + 3
        )
    else:
        counts = sample_unit_counts(
            spec.num_devices, spec.units_low, spec.units_high, seed=spec.seed + 3
        )
        unit_times = unit_times_from_counts(counts)

    family = spec.model_family or DATASETS[spec.dataset].model_family
    model = build_model(test_set, family, spec.model_preset, seed=spec.seed + 4)
    trainer = LocalTrainer(
        model, lr=spec.lr, batch_size=spec.batch_size, seed=spec.seed + 5
    )
    # Struct-of-arrays population: one gathered data block, per-device
    # zero-copy shard slices, lazily materialized weight rows — O(active)
    # memory at any fleet size (see repro.device.fleet).
    devices = make_fleet(train_set, parts, unit_times, trainer)

    # Spec fields that only some method configs define are forwarded when
    # the config class has the field, ignored otherwise — so one campaign
    # grid over e.g. buffer_goal can include sync methods without erroring.
    cfg_fields = {f.name for f in fields(entry.config_cls)}
    optional = {
        key: value
        for key, value in (
            ("eval_time_every", spec.eval_time_every),
            ("staleness_decay", spec.staleness_decay),
            ("buffer_goal", spec.buffer_goal),
            ("aggregator", spec.aggregator),
            ("round_deadline", spec.round_deadline),
            ("over_select", spec.over_select),
            ("max_retries", spec.max_retries),
        )
        if value is not None and key in cfg_fields
    }
    config = entry.config_cls(
        rounds=spec.rounds,
        participation=spec.participation,
        local_epochs=spec.local_epochs,
        eval_every=spec.eval_every,
        seed=spec.seed + 6,
        **{**optional, **spec.method_kwargs},
    )
    environment = make_environment(spec.env, **spec.env_kwargs)
    server = entry.server_cls(
        devices, test_set, config, logger=logger, env=environment
    )
    if spec.selection is not None:
        fraction = (
            spec.selection_fraction
            if spec.selection_fraction is not None
            else spec.participation
        )
        server.selection_policy = make_policy(spec.selection, fraction)
    if spec.codec != "none" or spec.codec_kwargs:
        # Codec-private rng stream: seeded off the experiment seed but
        # disjoint from the +0..+6 substrate streams, so switching codecs
        # never perturbs data/model/training randomness.
        server.codec = make_codec(
            spec.codec, **{"seed": spec.seed + 7, **spec.codec_kwargs}
        )
    if spec.faults != "none" or spec.fault_kwargs:
        # Fault draws run on their own (*, 200..202) seed streams —
        # disjoint from substrate (+0..+6) and codec (+7) randomness — so
        # arming a model that injects nothing perturbs nothing.
        server.set_faults(make_fault_model(spec.faults, **spec.fault_kwargs))
    if spec.transport != "sim" or spec.transport_kwargs:
        # The live backend needs the spec itself: worker processes rebuild
        # the whole substrate from it (same seeds -> identical shards,
        # model init and training streams).  Sockets open lazily at the
        # first broadcast, so building a live spec stays side-effect free.
        server.transport = make_transport(spec.transport, **spec.transport_kwargs)
        server.transport.bind(server, spec)
    # Batched engine last: it snapshots the trainer/fleet pair, which is
    # final by now.  "auto" degrades silently to sequential when the model
    # or population cannot batch (CNNs, per-object device lists).
    server.set_device_batching(spec.device_batching)
    return server


def run_experiment(spec: ExperimentSpec, logger: RunLogger | None = None):
    """Build and run; returns the :class:`~repro.simulation.results.RunResult`."""
    server = build_experiment(spec, logger=logger)
    try:
        result = server.fit()
    finally:
        # Live worker processes must die with the run, success or not.
        server.transport.shutdown()
    result.config.update(
        dataset=spec.dataset,
        partition=spec.partition,
        beta=spec.beta if spec.partition == "dirichlet" else None,
        num_devices=spec.num_devices,
        model_preset=spec.model_preset,
        env=spec.env,
    )
    if spec.env_kwargs:
        result.config["env_kwargs"] = dict(spec.env_kwargs)
    if spec.eval_time_every is not None:
        result.config["eval_time_every"] = spec.eval_time_every
    if spec.staleness_decay is not None:
        result.config["staleness_decay"] = spec.staleness_decay
    if spec.buffer_goal is not None:
        result.config["buffer_goal"] = spec.buffer_goal
    if spec.codec != "none":
        result.config["codec"] = spec.codec
    if spec.codec_kwargs:
        result.config["codec_kwargs"] = dict(spec.codec_kwargs)
    if spec.aggregator is not None:
        result.config["aggregator"] = spec.aggregator
    if spec.faults != "none":
        result.config["faults"] = spec.faults
    if spec.fault_kwargs:
        result.config["fault_kwargs"] = dict(spec.fault_kwargs)
    if spec.transport != "sim":
        result.config["transport"] = spec.transport
    if spec.transport_kwargs:
        result.config["transport_kwargs"] = dict(spec.transport_kwargs)
    if spec.device_batching != "auto":
        result.config["device_batching"] = spec.device_batching
    if spec.round_deadline is not None:
        result.config["round_deadline"] = spec.round_deadline
    if spec.over_select is not None:
        result.config["over_select"] = spec.over_select
    if spec.max_retries is not None:
        result.config["max_retries"] = spec.max_retries
    if spec.selection is not None:
        result.config["selection"] = spec.selection
        result.config["selection_fraction"] = (
            spec.selection_fraction
            if spec.selection_fraction is not None
            else spec.participation
        )
    return result
