"""High-level experiment assembly: one config object -> one RunResult.

This is the entry point examples and benchmarks use.  An
:class:`ExperimentSpec` names a dataset, a partition scheme, a
heterogeneity profile, a model preset and a method; :func:`run_experiment`
assembles the substrate (data, devices, trainer, server) and runs it on the
virtual clock.

Reduced-scale defaults: the paper runs 100 devices / 100-150 rounds on a
GPU fleet; this box has one CPU core.  Specs default to bench-scale values
and every paper-scale value remains one field away (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.baselines import ALL_BASELINES
from repro.baselines.fedat import FedATConfig
from repro.baselines.fedavg import FedAvgConfig
from repro.baselines.fedprox import FedProxConfig
from repro.baselines.scaffold import ScaffoldConfig
from repro.baselines.tafedavg import TAFedAvgConfig
from repro.baselines.tfedavg import TFedAvgConfig
from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer
from repro.core.server import FederatedServer, ServerConfig
from repro.datasets import make_dataset, partition_by_name, train_test_split
from repro.datasets.core import ClassificationDataset
from repro.datasets.registry import DATASETS
from repro.device import LocalTrainer, make_devices, unit_times_from_counts, unit_times_from_ratio
from repro.device.heterogeneity import sample_unit_counts
from repro.nn.layers import Flatten
from repro.nn.models import Sequential, paper_cnn, paper_mlp
from repro.utils.logging import RunLogger

__all__ = ["ExperimentSpec", "build_model", "build_experiment", "run_experiment", "METHODS"]

METHODS = dict(ALL_BASELINES, fedhisyn=FedHiSynServer)

_METHOD_CONFIGS = {
    "fedhisyn": FedHiSynConfig,
    "fedavg": FedAvgConfig,
    "tfedavg": TFedAvgConfig,
    "tafedavg": TAFedAvgConfig,
    "fedprox": FedProxConfig,
    "fedat": FedATConfig,
    "scaffold": ScaffoldConfig,
}

#: Model size presets.  "paper" is the architecture of Section 6.1 verbatim;
#: "small" shrinks widths for the single-core benchmark budget while keeping
#: the same depth/structure.
MODEL_PRESETS: dict[str, dict[str, Any]] = {
    "paper": {"mlp_hidden": (200, 100), "cnn_channels": 64, "cnn_fc": (394, 192)},
    "small": {"mlp_hidden": (48, 24), "cnn_channels": 8, "cnn_fc": (48, 24)},
}


@dataclass
class ExperimentSpec:
    """Everything needed to reproduce one training run."""

    method: str = "fedhisyn"
    dataset: str = "mnist_like"
    num_samples: int = 2000
    num_devices: int = 20
    partition: str = "dirichlet"  # "iid" | "dirichlet" | "shard"
    beta: float = 0.3
    participation: float = 1.0
    # Heterogeneity: either unit counts in [units_low, units_high] (paper
    # mode) or an exact ratio H (Fig. 7 mode, takes precedence if set).
    units_low: int = 1
    units_high: int = 10
    het_ratio: float | None = None
    rounds: int = 20
    local_epochs: int = 1
    lr: float = 0.1
    batch_size: int = 50
    eval_every: int = 1
    model_preset: str = "small"
    model_family: str | None = None  # default: the dataset registry's family
    test_fraction: float = 0.2
    seed: int = 0
    method_kwargs: dict[str, Any] = field(default_factory=dict)

    def with_method(self, method: str, **method_kwargs) -> "ExperimentSpec":
        """Same experiment, different algorithm — for method comparisons."""
        return replace(self, method=method, method_kwargs=dict(method_kwargs))


def build_model(
    dataset: ClassificationDataset,
    family: str,
    preset: str = "small",
    seed: int | np.random.Generator | None = 0,
) -> Sequential:
    """Construct the paper's model family sized by ``preset``.

    An MLP applied to image data gets a Flatten front; a CNN requires image
    data.
    """
    sizes = MODEL_PRESETS[preset]
    if family == "mlp":
        model = paper_mlp(
            dataset.flat_features,
            dataset.num_classes,
            seed=seed,
            hidden=sizes["mlp_hidden"],
        )
        if len(dataset.feature_shape) > 1:
            model.layers.insert(0, Flatten())
        return model
    if family == "cnn":
        if len(dataset.feature_shape) != 3:
            raise ValueError("cnn family requires (C, H, W) data")
        c, h, w = dataset.feature_shape
        if h != w:
            raise ValueError(f"cnn expects square images, got {h}x{w}")
        return paper_cnn(
            c,
            h,
            dataset.num_classes,
            seed=seed,
            conv_channels=sizes["cnn_channels"],
            fc_sizes=sizes["cnn_fc"],
        )
    raise ValueError(f"unknown model family {family!r}")


def build_experiment(
    spec: ExperimentSpec, logger: RunLogger | None = None
) -> FederatedServer:
    """Assemble dataset, devices, trainer and server for ``spec``."""
    if spec.method not in METHODS:
        raise ValueError(f"unknown method {spec.method!r}; known: {sorted(METHODS)}")

    dataset = make_dataset(spec.dataset, num_samples=spec.num_samples, seed=spec.seed)
    train_set, test_set = train_test_split(
        dataset, spec.test_fraction, seed=spec.seed + 1
    )

    parts = partition_by_name(
        spec.partition,
        train_set,
        spec.num_devices,
        seed=spec.seed + 2,
        **({"beta": spec.beta} if spec.partition == "dirichlet" else {}),
    )

    if spec.het_ratio is not None:
        unit_times = unit_times_from_ratio(
            spec.num_devices, spec.het_ratio, seed=spec.seed + 3
        )
    else:
        counts = sample_unit_counts(
            spec.num_devices, spec.units_low, spec.units_high, seed=spec.seed + 3
        )
        unit_times = unit_times_from_counts(counts)

    family = spec.model_family or DATASETS[spec.dataset].model_family
    model = build_model(test_set, family, spec.model_preset, seed=spec.seed + 4)
    trainer = LocalTrainer(
        model, lr=spec.lr, batch_size=spec.batch_size, seed=spec.seed + 5
    )
    devices = make_devices(train_set, parts, unit_times, trainer)

    config_cls = _METHOD_CONFIGS[spec.method]
    config = config_cls(
        rounds=spec.rounds,
        participation=spec.participation,
        local_epochs=spec.local_epochs,
        eval_every=spec.eval_every,
        seed=spec.seed + 6,
        **spec.method_kwargs,
    )
    server_cls = METHODS[spec.method]
    return server_cls(devices, test_set, config, logger=logger)


def run_experiment(spec: ExperimentSpec, logger: RunLogger | None = None):
    """Build and run; returns the :class:`~repro.simulation.results.RunResult`."""
    server = build_experiment(spec, logger=logger)
    result = server.fit()
    result.config.update(
        dataset=spec.dataset,
        partition=spec.partition,
        beta=spec.beta if spec.partition == "dirichlet" else None,
        num_devices=spec.num_devices,
        model_preset=spec.model_preset,
    )
    return result
