"""Named update codecs: the sweepable compression axis.

Mirrors :mod:`repro.env.registry`: every codec registers a factory under
a short lowercase name, :func:`make_codec` instantiates one with keyword
overrides (the ``ExperimentSpec.codec_kwargs`` / ``--topk-frac`` path),
and bad names or kwargs fail with ``ValueError`` at spec-validation time
rather than mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.compression.base import UpdateCodec

__all__ = [
    "CodecEntry",
    "register_codec",
    "make_codec",
    "available_codecs",
    "codec_entries",
]


@dataclass(frozen=True)
class CodecEntry:
    """One registered codec: its factory plus the ``list codecs`` blurb."""

    name: str
    factory: Callable[..., UpdateCodec]
    description: str = ""


_REGISTRY: dict[str, CodecEntry] = {}


def register_codec(
    name: str, description: str = ""
) -> Callable[[Callable[..., UpdateCodec]], Callable[..., UpdateCodec]]:
    """Decorator registering a codec factory (usually the class) under
    ``name``."""
    if not name or not name.replace("_", "").islower() or not name.isidentifier():
        raise ValueError(
            f"codec name must be a lowercase identifier, got {name!r}"
        )

    def decorate(factory: Callable[..., UpdateCodec]) -> Callable[..., UpdateCodec]:
        if name in _REGISTRY and _REGISTRY[name].factory is not factory:
            raise ValueError(f"codec {name!r} is already registered")
        _REGISTRY[name] = CodecEntry(name, factory, description)
        return factory

    return decorate


def make_codec(name: str, **overrides: Any) -> UpdateCodec:
    """Instantiate a registered codec, applying keyword overrides.

    Raises ``ValueError`` for an unknown name *or* an unknown override
    key, so :class:`ExperimentSpec` validation catches bad
    ``codec_kwargs`` at sweep-expansion time.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; known: {available_codecs()}"
        ) from None
    try:
        return entry.factory(**overrides)
    except TypeError as exc:
        raise ValueError(f"bad codec_kwargs for codec {name!r}: {exc}") from None


def available_codecs() -> list[str]:
    """Sorted names of every registered codec."""
    return sorted(_REGISTRY)


def codec_entries() -> list[CodecEntry]:
    """All registered entries, sorted by name — the ``list codecs`` feed."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
