"""The UpdateCodec interface: what any update compressor must provide.

An update codec maps a flat float64 weight vector to an
:class:`Encoded` payload — carrying its exact on-wire byte count — and
back.  The decode may be lossy (top-k, quantization); the channel layer
feeds the *decoded* vector to whoever would have received the original,
so compression error propagates into training exactly as it would in a
real deployment.

Two pieces of per-stream state make the interface richer than a pure
function:

* **reference** — most codecs compress the *difference* against a model
  both endpoints already share (the last decoded broadcast, the round's
  start view).  ``encode(vec, reference=ref)`` compresses ``vec - ref``;
  ``decode`` reconstructs ``ref + delta``.  When no reference exists yet
  (first contact on a stream) reference-based codecs fall back to a
  dense lossless payload, which *establishes* the reference chain.
* **key** — an opaque per-stream identity (a device id, ``"server-down"``,
  ``("peer", dev_id)``).  Codecs with per-stream state — top-k's
  error-feedback residual — index it by this key so independent streams
  never share residuals.

Model units: the channel meters transfers in *models* (the paper's
Table 1 unit).  ``Encoded.model_units`` is ``nbytes / (8 * dim)`` — the
payload's size as a fraction of one dense float64 model — so transfer
times (``latency + units / bandwidth``) and the meter shrink by exactly
the compression ratio.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

__all__ = [
    "DENSE_BYTES_PER_COORD",
    "PAYLOAD_KINDS",
    "PAYLOAD_KIND_CODES",
    "Encoded",
    "UpdateCodec",
]

#: A dense coordinate on the wire: one float64.
DENSE_BYTES_PER_COORD = 8

#: Wire codes for every payload kind an :class:`Encoded` can carry.  The
#: kind is *out-of-band* metadata (the live transport's frame header, not
#: the payload), so ``len(to_bytes()) == nbytes`` holds exactly — the
#: byte accounting the simulator charges IS the datagram payload size.
#: ``raw`` is the identity codec's bare ndarray payload; ``dense`` the
#: reference-free fallback every codec shares; the rest are codec-private.
PAYLOAD_KIND_CODES: dict[str, int] = {
    "raw": 0,
    "dense": 1,
    "topk": 2,
    "qsgd": 3,
    "delta": 4,
}
PAYLOAD_KINDS: dict[int, str] = {v: k for k, v in PAYLOAD_KIND_CODES.items()}


@dataclass
class Encoded:
    """One encoded update: the payload plus its exact wire size.

    ``payload`` is codec-private (only the producing codec's ``decode``
    reads it); ``dim`` is the flat model dimension; ``nbytes`` the exact
    on-wire byte count; ``reference`` the shared vector the payload was
    encoded against (None for self-contained payloads).
    """

    payload: Any
    dim: int
    nbytes: int
    reference: np.ndarray | None = None

    @property
    def model_units(self) -> float:
        """Wire size in dense-model units — what the channel meters."""
        return self.nbytes / (DENSE_BYTES_PER_COORD * self.dim)

    @property
    def kind(self) -> str:
        """Payload kind tag (see :data:`PAYLOAD_KIND_CODES`): ``"raw"``
        for a bare ndarray payload (identity codec), the payload tuple's
        leading tag otherwise."""
        if isinstance(self.payload, np.ndarray):
            return "raw"
        return self.payload[0]

    @property
    def param(self) -> int:
        """Codec parameter a receiver needs to parse the payload bytes:
        QSGD's bit width (its bit-packed wire format is ambiguous without
        it); zero for every self-describing kind."""
        if self.kind == "qsgd":
            _, scale, levels, _ = self.payload
            if levels is not None:
                # Levels fit in `bits` bits; recover the width from the
                # byte budget: nbytes = 8 + ceil(dim * (bits + 1) / 8).
                payload_bits = (self.nbytes - 8) * 8
                return max(1, payload_bits // self.dim - 1) if self.dim else 1
            # Zero-scale payload: same formula, levels never materialized.
            return max(1, (self.nbytes - 8) * 8 // self.dim - 1) if self.dim else 1
        return 0

    def to_bytes(self) -> bytes:
        """Exact wire serialization of the payload.

        Invariant (asserted by the codec tests and exercised for real by
        the live UDP transport): ``len(enc.to_bytes()) == enc.nbytes`` for
        every codec — the accounting the simulator charges is the byte
        string that actually crosses the wire.  The payload *kind*, the
        model ``dim`` and the qsgd bit width travel out-of-band (frame
        header fields), which is what keeps dense payloads header-free.
        """
        kind = self.kind
        if kind == "raw":
            return np.ascontiguousarray(self.payload, dtype=np.float64).tobytes()
        if kind == "dense":
            return np.ascontiguousarray(self.payload[1], dtype=np.float64).tobytes()
        if kind == "topk":
            _, idx, values = self.payload
            head = struct.pack("!I", idx.size)
            return head + idx.astype("<i4").tobytes() + values.astype("<f4").tobytes()
        if kind == "delta":
            _, idx, values = self.payload
            head = struct.pack("!I", idx.size)
            return head + idx.astype("<i4").tobytes() + values.astype("<f8").tobytes()
        if kind == "qsgd":
            _, scale, levels, signs = self.payload
            bits = self.param
            body_len = self.nbytes - 8
            head = struct.pack("!d", float(scale))
            if scale == 0.0 or levels is None:
                return head + bytes(body_len)
            # Per coordinate: 1 sign bit then `bits` magnitude bits, MSB
            # first; np.packbits pads the tail to a byte boundary.
            cols = [np.asarray(signs) < 0.0]
            lv = np.asarray(levels).astype(np.uint32)
            cols.extend(((lv >> (bits - 1 - b)) & 1).astype(bool)
                        for b in range(bits))
            mat = np.stack(cols, axis=1).astype(np.uint8)
            packed = np.packbits(mat.reshape(-1))
            return head + packed.tobytes() + bytes(body_len - packed.size)
        raise ValueError(f"unknown payload kind {kind!r}")

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        kind: str,
        dim: int,
        reference: np.ndarray | None = None,
        param: int = 0,
    ) -> "Encoded":
        """Inverse of :meth:`to_bytes`.

        ``kind``/``dim``/``param`` are the out-of-band header fields;
        ``reference`` re-attaches the receiver's copy of the shared
        reference model so the producing codec's ``decode`` works
        unchanged.  Round-trip contract: for any codec ``c`` and encoded
        ``e``, ``c.decode(Encoded.from_bytes(e.to_bytes(), e.kind, e.dim,
        ref, e.param))`` equals ``c.decode(e)`` bit-for-bit.
        """
        nbytes = len(data)
        if kind in ("raw", "dense"):
            vec = np.frombuffer(data, dtype=np.float64).copy()
            if vec.size != dim:
                raise ValueError(
                    f"dense payload has {vec.size} coords, expected {dim}"
                )
            payload = vec if kind == "raw" else ("dense", vec)
            return cls(payload, dim, nbytes, reference)
        if kind in ("topk", "delta"):
            (count,) = struct.unpack_from("!I", data)
            idx_end = 4 + 4 * count
            vdtype, vsize = ("<f4", 4) if kind == "topk" else ("<f8", 8)
            if nbytes != idx_end + vsize * count:
                raise ValueError(
                    f"{kind} payload length {nbytes} does not match "
                    f"count {count}"
                )
            idx = np.frombuffer(data, dtype="<i4", count=count, offset=4).copy()
            values = np.frombuffer(
                data, dtype=vdtype, count=count, offset=idx_end
            ).copy()
            if kind == "topk":
                return cls(("topk", idx, values.astype(np.float32)), dim,
                           nbytes, reference)
            return cls(("delta", idx, values.astype(np.float64)), dim,
                       nbytes, reference)
        if kind == "qsgd":
            bits = int(param)
            if bits < 1:
                raise ValueError(f"qsgd payload needs its bit width, got {param}")
            if nbytes != 8 + math.ceil(dim * (bits + 1) / 8):
                raise ValueError(
                    f"qsgd payload length {nbytes} does not match "
                    f"dim={dim}, bits={bits}"
                )
            (scale,) = struct.unpack_from("!d", data)
            if scale == 0.0:
                return cls(("qsgd", 0.0, None, None), dim, nbytes, reference)
            flat = np.unpackbits(
                np.frombuffer(data, dtype=np.uint8, offset=8),
                count=dim * (bits + 1),
            )
            mat = flat.reshape(dim, bits + 1)
            signs = np.where(mat[:, 0] == 1, -1.0, 1.0)
            weights = (1 << np.arange(bits - 1, -1, -1)).astype(np.int64)
            levels = (mat[:, 1:].astype(np.int64) @ weights).astype(np.int32)
            return cls(("qsgd", float(scale), levels, signs), dim, nbytes,
                       reference)
        raise ValueError(f"unknown payload kind {kind!r}")


class UpdateCodec:
    """Base class: identity semantics hooks plus the encode/decode pair.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`encode`/:meth:`decode`.  ``is_identity`` lets the channel
    fast-path the default codec with zero overhead (and bit-identical
    behavior); it is False for everything that actually transforms the
    payload — including lossless sparse codecs, whose *byte counts*
    differ even though values round-trip exactly.
    """

    name = "base"
    is_identity = False
    description = ""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        """Compress ``vec`` (optionally against ``reference``) for stream
        ``key``.  Must never mutate ``vec`` or ``reference``."""
        raise NotImplementedError

    def decode(self, enc: Encoded) -> np.ndarray:
        """Reconstruct the (possibly lossy) vector the receiver sees.

        The result must be safe for the receiver to keep: either a fresh
        array or an alias of an array nobody mutates (identity payloads
        follow the server's replace-never-mutate contract).
        """
        raise NotImplementedError

    def dense_encode(self, vec: np.ndarray) -> Encoded:
        """Lossless dense fallback — the no-shared-reference escape hatch."""
        vec = np.asarray(vec, dtype=np.float64)
        return Encoded(("dense", vec), vec.size, DENSE_BYTES_PER_COORD * vec.size)

    def reset(self) -> None:
        """Drop per-stream state (residuals, rng); a fresh-run hook."""

    def describe(self) -> str:
        """One-line summary for ``repro list codecs``."""
        return self.description or self.name
