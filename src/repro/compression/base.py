"""The UpdateCodec interface: what any update compressor must provide.

An update codec maps a flat float64 weight vector to an
:class:`Encoded` payload — carrying its exact on-wire byte count — and
back.  The decode may be lossy (top-k, quantization); the channel layer
feeds the *decoded* vector to whoever would have received the original,
so compression error propagates into training exactly as it would in a
real deployment.

Two pieces of per-stream state make the interface richer than a pure
function:

* **reference** — most codecs compress the *difference* against a model
  both endpoints already share (the last decoded broadcast, the round's
  start view).  ``encode(vec, reference=ref)`` compresses ``vec - ref``;
  ``decode`` reconstructs ``ref + delta``.  When no reference exists yet
  (first contact on a stream) reference-based codecs fall back to a
  dense lossless payload, which *establishes* the reference chain.
* **key** — an opaque per-stream identity (a device id, ``"server-down"``,
  ``("peer", dev_id)``).  Codecs with per-stream state — top-k's
  error-feedback residual — index it by this key so independent streams
  never share residuals.

Model units: the channel meters transfers in *models* (the paper's
Table 1 unit).  ``Encoded.model_units`` is ``nbytes / (8 * dim)`` — the
payload's size as a fraction of one dense float64 model — so transfer
times (``latency + units / bandwidth``) and the meter shrink by exactly
the compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

__all__ = ["DENSE_BYTES_PER_COORD", "Encoded", "UpdateCodec"]

#: A dense coordinate on the wire: one float64.
DENSE_BYTES_PER_COORD = 8


@dataclass
class Encoded:
    """One encoded update: the payload plus its exact wire size.

    ``payload`` is codec-private (only the producing codec's ``decode``
    reads it); ``dim`` is the flat model dimension; ``nbytes`` the exact
    on-wire byte count; ``reference`` the shared vector the payload was
    encoded against (None for self-contained payloads).
    """

    payload: Any
    dim: int
    nbytes: int
    reference: np.ndarray | None = None

    @property
    def model_units(self) -> float:
        """Wire size in dense-model units — what the channel meters."""
        return self.nbytes / (DENSE_BYTES_PER_COORD * self.dim)


class UpdateCodec:
    """Base class: identity semantics hooks plus the encode/decode pair.

    Subclasses set ``name`` (the registry key) and implement
    :meth:`encode`/:meth:`decode`.  ``is_identity`` lets the channel
    fast-path the default codec with zero overhead (and bit-identical
    behavior); it is False for everything that actually transforms the
    payload — including lossless sparse codecs, whose *byte counts*
    differ even though values round-trip exactly.
    """

    name = "base"
    is_identity = False
    description = ""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        """Compress ``vec`` (optionally against ``reference``) for stream
        ``key``.  Must never mutate ``vec`` or ``reference``."""
        raise NotImplementedError

    def decode(self, enc: Encoded) -> np.ndarray:
        """Reconstruct the (possibly lossy) vector the receiver sees.

        The result must be safe for the receiver to keep: either a fresh
        array or an alias of an array nobody mutates (identity payloads
        follow the server's replace-never-mutate contract).
        """
        raise NotImplementedError

    def dense_encode(self, vec: np.ndarray) -> Encoded:
        """Lossless dense fallback — the no-shared-reference escape hatch."""
        vec = np.asarray(vec, dtype=np.float64)
        return Encoded(("dense", vec), vec.size, DENSE_BYTES_PER_COORD * vec.size)

    def reset(self) -> None:
        """Drop per-stream state (residuals, rng); a fresh-run hook."""

    def describe(self) -> str:
        """One-line summary for ``repro list codecs``."""
        return self.description or self.name
