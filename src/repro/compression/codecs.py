"""The bundled codecs: none, topk, qsgd, delta.

All reference-based codecs share one convention: with no shared
reference yet (first contact on a stream, or a lossy broadcast that left
some receiver without the round's view) they emit a dense lossless
payload via :meth:`UpdateCodec.dense_encode` — correctness never depends
on the compression schedule.  Sparse payloads carry a 4-byte length
header; every byte count below is exact for the stated wire format.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.compression.base import DENSE_BYTES_PER_COORD, Encoded, UpdateCodec
from repro.compression.registry import register_codec

__all__ = ["IdentityCodec", "TopKCodec", "QSGDCodec", "DeltaCodec"]

#: Sparse wire format: 4-byte entry count, then per kept coordinate an
#: int32 index (4 B) plus the value (float32 for lossy top-k, float64
#: for the lossless delta codec).
_SPARSE_HEADER_BYTES = 4
_INDEX_BYTES = 4


@register_codec("none", "identity: dense float64 payloads, zero transform")
class IdentityCodec(UpdateCodec):
    """The default codec: payloads cross the wire untouched.

    ``decode(encode(v))`` returns ``v`` itself (same object), and the
    channel layer additionally fast-paths around identity codecs
    entirely, so ``codec="none"`` is bit-identical to runs that predate
    the compression subsystem.
    """

    name = "none"
    is_identity = True
    description = "dense float64 payloads (1.0 model units), no transform"

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        vec = np.asarray(vec, dtype=np.float64)
        return Encoded(vec, vec.size, DENSE_BYTES_PER_COORD * vec.size)

    def decode(self, enc: Encoded) -> np.ndarray:
        return enc.payload


@register_codec(
    "topk", "magnitude top-k sparsification with per-stream error feedback"
)
class TopKCodec(UpdateCodec):
    """Keep the ``fraction`` largest-magnitude coordinates of the delta.

    The classic sparsified-SGD compressor: the update against the shared
    reference is sparsified to its top-k coordinates by magnitude; what
    was *not* sent accumulates in a per-stream residual and is added to
    the next delta before selection (error feedback), so every
    coordinate's contribution eventually ships — conservation law:
    ``sent + new_residual == delta + old_residual`` per encode.

    Wire format per update: header + k x (int32 index, float32 value),
    i.e. ``4 + 8k`` bytes ≈ ``fraction`` dense model units.
    """

    name = "topk"
    description = "top-k sparsified deltas + error-feedback residual"

    def __init__(
        self, fraction: float = 0.1, error_feedback: bool = True, seed: int = 0
    ) -> None:
        super().__init__(seed)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.error_feedback = bool(error_feedback)
        self._residuals: dict[Hashable, np.ndarray] = {}

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        vec = np.asarray(vec, dtype=np.float64)
        if reference is None:
            return self.dense_encode(vec)
        delta = vec - reference
        track = self.error_feedback and key is not None
        if track:
            residual = self._residuals.get(key)
            if residual is not None:
                delta = delta + residual
        dim = delta.size
        k = max(1, int(round(self.fraction * dim)))
        if k >= dim:
            idx = np.arange(dim, dtype=np.int32)
        else:
            part = np.argpartition(np.abs(delta), dim - k)[dim - k:]
            idx = np.sort(part).astype(np.int32)
        values = delta[idx].astype(np.float32)
        if track:
            residual = delta.copy()
            residual[idx] -= values.astype(np.float64)
            self._residuals[key] = residual
        nbytes = _SPARSE_HEADER_BYTES + (_INDEX_BYTES + 4) * k
        return Encoded(("topk", idx, values), dim, nbytes, reference)

    def decode(self, enc: Encoded) -> np.ndarray:
        kind = enc.payload[0]
        if kind == "dense":
            return enc.payload[1]
        _, idx, values = enc.payload
        out = enc.reference.copy()
        out[idx] += values.astype(np.float64)
        return out

    def reset(self) -> None:
        self._residuals.clear()

    def residual(self, key: Hashable) -> np.ndarray | None:
        """Stream ``key``'s accumulated unsent mass (tests/diagnostics)."""
        return self._residuals.get(key)

    def describe(self) -> str:
        return (
            f"{self.description} (fraction={self.fraction:g}, "
            f"error_feedback={self.error_feedback})"
        )


@register_codec(
    "qsgd", "stochastic uniform quantization of deltas at `bits` bits"
)
class QSGDCodec(UpdateCodec):
    """QSGD-style stochastic uniform quantization of the delta.

    Coordinates are scaled by the delta's max magnitude into
    ``2**bits - 1`` uniform levels and rounded *stochastically* — up with
    probability equal to the fractional part — making the decoded delta
    an unbiased estimate of the true one.  The randomness is the codec's
    own persistent generator seeded at construction: the simulator calls
    encode in a deterministic order, so runs reproduce exactly for a
    fixed seed without touching any training rng stream.

    Wire format: 8-byte scale + ``bits + 1`` bits per coordinate (sign +
    magnitude level), i.e. ``8 + ceil(dim * (bits + 1) / 8)`` bytes.
    """

    name = "qsgd"
    description = "stochastic uniform quantization of deltas"

    def __init__(self, bits: int = 4, seed: int = 0) -> None:
        super().__init__(seed)
        if not 1 <= int(bits) <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = int(bits)
        self._levels = 2**self.bits - 1
        self._rng = np.random.default_rng(np.random.SeedSequence(self.seed))

    def _wire_bytes(self, dim: int) -> int:
        return 8 + math.ceil(dim * (self.bits + 1) / 8)

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        vec = np.asarray(vec, dtype=np.float64)
        if reference is None:
            return self.dense_encode(vec)
        delta = vec - reference
        dim = delta.size
        nbytes = self._wire_bytes(dim)
        scale = float(np.abs(delta).max()) if dim else 0.0
        if scale == 0.0:
            return Encoded(("qsgd", 0.0, None, None), dim, nbytes, reference)
        scaled = np.abs(delta) * (self._levels / scale)
        floor = np.floor(scaled)
        levels = (floor + (self._rng.random(dim) < scaled - floor)).astype(
            np.int32
        )
        signs = np.where(delta < 0.0, -1.0, 1.0)
        return Encoded(("qsgd", scale, levels, signs), dim, nbytes, reference)

    def decode(self, enc: Encoded) -> np.ndarray:
        kind = enc.payload[0]
        if kind == "dense":
            return enc.payload[1]
        _, scale, levels, signs = enc.payload
        if scale == 0.0:
            return enc.reference.copy()
        delta = signs * (levels * (scale / self._levels))
        return enc.reference + delta

    def reset(self) -> None:
        self._rng = np.random.default_rng(np.random.SeedSequence(self.seed))

    def describe(self) -> str:
        return f"{self.description} (bits={self.bits})"


@register_codec(
    "delta", "lossless sparse encoding against the last acknowledged model"
)
class DeltaCodec(UpdateCodec):
    """Send only the coordinates that changed since the reference, exactly.

    Stores the changed coordinates' *absolute* values (float64), not
    their differences, so decode reproduces the input bit-for-bit:
    unchanged coordinates come from the shared reference, changed ones
    from the payload.  Falls back to a dense payload whenever the sparse
    form (``4 + 12 * nnz`` bytes) would not actually be smaller — a
    short local run touches most coordinates, so this codec pays off for
    sparse updates (few-epoch rounds, frozen layers), never costs more
    than dense, and is always lossless.
    """

    name = "delta"
    description = "lossless sparse diff vs the last acknowledged model"

    def encode(
        self,
        vec: np.ndarray,
        key: Hashable | None = None,
        reference: np.ndarray | None = None,
    ) -> Encoded:
        vec = np.asarray(vec, dtype=np.float64)
        if reference is None:
            return self.dense_encode(vec)
        changed = np.flatnonzero(vec != reference)
        nbytes = _SPARSE_HEADER_BYTES + (_INDEX_BYTES + 8) * changed.size
        if nbytes >= DENSE_BYTES_PER_COORD * vec.size:
            return self.dense_encode(vec)
        payload = ("delta", changed.astype(np.int32), vec[changed].copy())
        return Encoded(payload, vec.size, nbytes, reference)

    def decode(self, enc: Encoded) -> np.ndarray:
        kind = enc.payload[0]
        if kind == "dense":
            return enc.payload[1]
        _, idx, values = enc.payload
        out = enc.reference.copy()
        out[idx] = values
        return out
