"""Communication-efficiency subsystem: pluggable update codecs.

Every model that crosses the costed channel (server broadcast/collect,
async sends, ring peer hops) can be routed through an
:class:`~repro.compression.base.UpdateCodec`: the codec turns a flat
weight vector into an :class:`~repro.compression.base.Encoded` payload
with an exact on-wire byte size, and the *decoded* (possibly lossy)
vector is what training and aggregation actually consume.  Transfer time
and byte metering shrink with the payload, so time-to-accuracy shows
precisely what compression buys under a bandwidth-bound environment.

Codecs register by name (mirroring :mod:`repro.env.registry`) and are
selected per experiment via ``ExperimentSpec.codec`` / ``codec_kwargs``:

>>> from repro.compression import make_codec
>>> codec = make_codec("topk", fraction=0.1)

``none`` (the default) is a true identity: the channel fast-paths around
it, so existing runs stay bit-for-bit unchanged.
"""

from repro.compression.base import Encoded, UpdateCodec
from repro.compression.codecs import (
    DeltaCodec,
    IdentityCodec,
    QSGDCodec,
    TopKCodec,
)
from repro.compression.registry import (
    CodecEntry,
    available_codecs,
    codec_entries,
    make_codec,
    register_codec,
)

__all__ = [
    "Encoded",
    "UpdateCodec",
    "IdentityCodec",
    "TopKCodec",
    "QSGDCodec",
    "DeltaCodec",
    "CodecEntry",
    "register_codec",
    "make_codec",
    "available_codecs",
    "codec_entries",
]
