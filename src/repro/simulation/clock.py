"""Virtual clock: a monotonically advancing simulation time."""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Holds the current virtual time; only moves forward."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock to absolute time ``t`` (must not go backwards)."""
        if t < self._now:
            raise ValueError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = float(t)
        return self._now

    def advance_by(self, dt: float) -> float:
        """Move the clock forward by ``dt`` (non-negative)."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self._now += float(dt)
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
