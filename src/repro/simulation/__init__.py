"""Discrete-event simulation substrate.

Everything here runs on **virtual time**: each device advertises a unit
time (see :mod:`repro.device.heterogeneity`), a round lasts as long as the
slowest participant's unit (the paper's convention), and async methods pop
upload events off a queue in time order.  No wall-clock coupling anywhere.
"""

from repro.simulation.clock import VirtualClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.engine import RingRoundEngine, async_upload_schedule
from repro.simulation.metrics import MetricsHistory, TransmissionMeter
from repro.simulation.results import RunResult
from repro.simulation.scheduler import (
    Scheduler,
    completed_units,
    completed_units_array,
)

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Scheduler",
    "RingRoundEngine",
    "async_upload_schedule",
    "completed_units",
    "completed_units_array",
    "TransmissionMeter",
    "MetricsHistory",
    "RunResult",
]
