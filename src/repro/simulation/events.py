"""Time-ordered event queues.

Ties on the timestamp break by insertion order (a monotone sequence
number), making simulations deterministic independent of queue internals.

Two interchangeable implementations of one contract:

* :class:`EventQueue` — a single binary heap.  O(log n) per operation
  with n the *total* number of scheduled events; the reference
  implementation the calendar queue is property-tested against.
* :class:`CalendarQueue` — a rotating bucket wheel over virtual time
  with a heap-based overflow tier (Brown's calendar queue, adapted).
  Near-future events land in per-bucket append lists (O(1) push), only
  the currently draining bucket lives in a small "front" heap, and
  events beyond the wheel's window wait in an overflow heap.  Per-event
  cost is O(log b) with b the *bucket* occupancy — at fleet scale b is
  orders of magnitude below n, which is what lets a million-device
  schedule dispatch at heap-free speed.

Both queues dispatch in exactly the same order.  The calendar queue
partitions events by disjoint virtual-time ranges (front < wheel <
overflow at all times) and resolves ties by sequence number inside each
tier, so the global ``(time, seq)`` order is preserved by construction —
bucket width affects only performance, never order.  The property tests
in ``tests/simulation/test_calendar_queue.py`` drive both through random
push/cancel/pop/lag schedules and assert element-for-element equality.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue", "CalendarQueue", "make_queue", "ENGINES"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence: compare by (time, seq).

    ``cancelled`` supports O(1) revocation: the scheduler marks the event
    dead in place and skips it on pop instead of re-heapifying.
    ``fired`` is set by the scheduler when the event is dispatched, making
    a late ``cancel()`` on a handle that already fired a safe no-op — the
    cancellable-timer contract (upload timeouts, pending unit completions)
    relies on it.

    ``members`` is the logical event count this entry carries: 1 for the
    classic one-device-one-event payloads, ``len(payload)`` for batched
    events whose payload is an id array (one ``unit_complete`` entry
    standing for a whole completion wave).  The scheduler's pending
    counters and ``events_processed`` count members, so throughput and
    emptiness semantics are independent of how events are packed.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)
    members: int = field(compare=False, default=1)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None, members: int = 1) -> Event:
        """Schedule an event at absolute virtual time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(
            time=float(time), seq=next(self._counter), kind=kind,
            payload=payload, members=members,
        )
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Bucketed event queue: a rotating wheel over virtual time plus a
    heap overflow tier, dispatching in exact ``(time, seq)`` order.

    Layout (three disjoint virtual-time tiers, earliest first):

    * **front** — a small heap of ``(time, seq, event)`` tuples holding
      every event at or before the bucket currently being drained,
      including *lagged* pushes (nominal time already passed).
    * **wheel** — ``num_buckets`` unsorted append-lists; absolute bucket
      ``b = floor(time / width)`` maps to slot ``b % num_buckets``, valid
      while ``b`` lies within one wheel revolution of the cursor.  A push
      here is a list append; the bucket is heapified wholesale only when
      the cursor reaches it.
    * **overflow** — a plain heap for events beyond the wheel's window;
      drained into the front as the cursor sweeps past their buckets.

    Front times are strictly below wheel times, which are strictly below
    nothing in overflow that the cursor has not yet reached — so the
    front's minimum is always the global minimum, and ties (same time)
    can only meet inside one heap, where the sequence number breaks them.
    Bucket width is chosen once, from the spread of the first batch of
    events, and affects performance only: a degenerate width turns the
    structure into a slightly indirect binary heap, never reorders it.

    Cancellation is inherited from the scheduler's lazy protocol: a
    cancelled event stays in place and is skipped when popped.
    """

    def __init__(self, num_buckets: int = 256) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self._n = int(num_buckets)
        self._counter = itertools.count()
        self._front: list[tuple[float, int, Event]] = []
        self._buckets: list[list[tuple[float, int, Event]]] = [
            [] for _ in range(self._n)
        ]
        self._overflow: list[tuple[float, int, Event]] = []
        self._width: float | None = None  # set on the first drain
        self._cur = -1  # absolute index of the bucket being drained
        self._wheel_count = 0

    def push(self, time: float, kind: str, payload: Any = None, members: int = 1) -> Event:
        """Schedule an event at absolute virtual time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        time = float(time)
        ev = Event(
            time=time, seq=next(self._counter), kind=kind,
            payload=payload, members=members,
        )
        entry = (time, ev.seq, ev)
        width = self._width
        if width is None:
            # Uninitialized wheel: accumulate in the overflow heap (always
            # correct); the first drain picks the width from what arrived.
            heapq.heappush(self._overflow, entry)
            return ev
        b = int(time / width)
        if b <= self._cur:
            # Current-bucket or lagged push: competes with the front heap.
            heapq.heappush(self._front, entry)
        elif b - self._cur <= self._n:
            self._buckets[b % self._n].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)
        return ev

    # ------------------------------------------------------------ internals

    def _init_width(self) -> None:
        """Pick the bucket width from the first resident batch: ~3 average
        inter-event gaps per bucket, the classic calendar-queue sizing."""
        times = [entry[0] for entry in self._overflow]
        lo, hi = min(times), max(times)
        span = hi - lo
        if span <= 0.0:
            width = 1.0
        else:
            width = 3.0 * span / len(times)
        self._width = width
        self._cur = int(lo / width) - 1

    def _refill_front(self) -> None:
        """Advance the cursor until the front holds the earliest events."""
        if self._width is None:
            if not self._overflow:
                return
            self._init_width()
        width = self._width
        n = self._n
        overflow = self._overflow
        front = self._front
        while not front:
            if self._wheel_count:
                # Sweep to the next bucket; its slot can only hold entries
                # of exactly this absolute index (later revolutions are
                # routed to overflow until the cursor frees the slot).
                self._cur += 1
            elif overflow:
                # Wheel empty: jump the cursor straight to the first
                # overflow bucket instead of sweeping empty slots.
                self._cur = max(self._cur + 1, int(overflow[0][0] / width))
            else:
                return  # queue is empty
            slot = self._buckets[self._cur % n]
            if slot:
                front.extend(slot)
                self._wheel_count -= len(slot)
                slot.clear()
            # Same floor-index predicate as push routing (never a raw time
            # bound): ``int(t / width)`` is monotone in ``t``, so strictly
            # ordering the *indices* across tiers strictly orders the times
            # — immune to float wobble at bucket boundaries.
            while overflow and int(overflow[0][0] / width) <= self._cur:
                front.append(heapq.heappop(overflow))
            if front:
                heapq.heapify(front)

    # ------------------------------------------------------------ interface

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._front:
            self._refill_front()
            if not self._front:
                raise IndexError("pop from empty CalendarQueue")
        return heapq.heappop(self._front)[2]

    def peek(self) -> Event:
        """Earliest event without removing it."""
        if not self._front:
            self._refill_front()
            if not self._front:
                raise IndexError("peek on empty CalendarQueue")
        return self._front[0][2]

    def __len__(self) -> int:
        return len(self._front) + self._wheel_count + len(self._overflow)

    def __bool__(self) -> bool:
        return bool(self._front or self._wheel_count or self._overflow)


#: Queue engines selectable on :class:`~repro.simulation.scheduler.Scheduler`.
ENGINES = ("calendar", "heap")


def make_queue(engine: str = "calendar") -> EventQueue | CalendarQueue:
    """One queue of the named engine: ``calendar`` (default) or ``heap``."""
    if engine == "calendar":
        return CalendarQueue()
    if engine == "heap":
        return EventQueue()
    raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
