"""Time-ordered event queue.

Ties on the timestamp break by insertion order (a monotone sequence
number), making simulations deterministic independent of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled occurrence: compare by (time, seq).

    ``cancelled`` supports O(1) revocation: the scheduler marks the event
    dead in place and skips it on pop instead of re-heapifying.
    ``fired`` is set by the scheduler when the event is dispatched, making
    a late ``cancel()`` on a handle that already fired a safe no-op — the
    cancellable-timer contract (upload timeouts, pending unit completions)
    relies on it.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute virtual time ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = Event(time=float(time), seq=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
