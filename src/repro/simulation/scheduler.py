"""The discrete-event runtime shared by every method.

:class:`Scheduler` marries the :class:`~repro.simulation.events.EventQueue`
with the :class:`~repro.simulation.clock.VirtualClock` and makes the clock
the *driver* of a run instead of a passive counter: handlers registered per
event kind are dispatched in strict (time, insertion) order, and the clock
advances to each event as it fires.

Event taxonomy (module constants; ``Event.kind`` strings):

``ROUND_BARRIER``
    One synchronous round.  The classic ``for round in range(rounds)``
    loop is the *degenerate schedule* — each barrier handler runs a full
    round (which advances the clock by transfer + compute time) and pushes
    the next barrier at the new now, so all synchronous methods run on the
    same runtime as the asynchronous ones without a single float changing.
``BROADCAST_ARRIVAL``
    A server→device model push lands after its per-link latency.
``UNIT_COMPLETE``
    A device finishes one local-training unit.
``UPLOAD_ARRIVAL``
    A device→server upload lands after its per-link latency.
``AVAILABILITY_CHANGE``
    Churn epoch boundary: the availability model is re-drawn and devices
    park/rejoin — availability as events, not per-round masks.
``EVAL_CHECKPOINT``
    Virtual-time-indexed evaluation of the deployed global model (the
    time-to-accuracy metric's sampling process).
``PEER_DELIVER``
    A device→device ring hop lands (the FedHiSyn engine's traffic).

Fault-tolerance kinds (the :mod:`repro.faults` subsystem's traffic, armed
only when a fault model is active):

``UPLOAD_TIMEOUT``
    A device→server upload's retransmission timer matures; if the upload
    has not been acknowledged the sender retries with exponential backoff.
``RETRY_UPLOAD``
    A backed-off upload retransmission fires.
``DEVICE_CRASH``
    A device fail-stops mid-unit: its pending ``unit_complete`` is
    cancelled (the partial work is lost) and a restart is scheduled.
``DEVICE_RESTART``
    A crashed device comes back and rejoins the schedule.
``HEARTBEAT``
    A device's periodic liveness beacon reaches the server.
``SUSPECT``
    The failure detector's sweep: devices silent past the suspicion
    timeout are marked suspected and parked.

Lagged events — an event scheduled at a nominal time the clock has already
jumped past (synchronous rounds advance in lumps) — fire immediately at the
current clock, keeping their nominal ``Event.time`` for recording.  This is
what lets time-indexed eval checkpoints coexist with barrier rounds.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.simulation.clock import VirtualClock
from repro.simulation.events import ENGINES, Event, make_queue

__all__ = [
    "Scheduler",
    "DEFAULT_ENGINE",
    "ROUND_BARRIER",
    "BROADCAST_ARRIVAL",
    "UNIT_COMPLETE",
    "UPLOAD_ARRIVAL",
    "AVAILABILITY_CHANGE",
    "EVAL_CHECKPOINT",
    "PEER_DELIVER",
    "UPLOAD_TIMEOUT",
    "RETRY_UPLOAD",
    "DEVICE_CRASH",
    "DEVICE_RESTART",
    "HEARTBEAT",
    "SUSPECT",
    "completed_units",
    "completed_units_array",
]

ROUND_BARRIER = "round_barrier"
BROADCAST_ARRIVAL = "broadcast_arrival"
UNIT_COMPLETE = "unit_complete"
UPLOAD_ARRIVAL = "upload_arrival"
AVAILABILITY_CHANGE = "availability_change"
EVAL_CHECKPOINT = "eval_checkpoint"
PEER_DELIVER = "peer_deliver"
UPLOAD_TIMEOUT = "upload_timeout"
RETRY_UPLOAD = "retry_upload"
DEVICE_CRASH = "device_crash"
DEVICE_RESTART = "device_restart"
HEARTBEAT = "heartbeat"
SUSPECT = "suspect"

#: A float-epsilon guard shared by every "how many units fit" computation:
#: ``horizon / t`` lands a hair under an exact integer for many decimal
#: unit times (0.1, 0.2, ...), so a bare ``int()`` would lose a whole unit.
_EPS = 1e-9


def completed_units(horizon: float, unit_time: float) -> int:
    """Training units a device completes in ``horizon``: floor with an
    epsilon guard against ``horizon/t`` landing just under an integer,
    minimum one (Algorithm 1 line 11 always enters the loop).

    The single source of the ``int(horizon / t + 1e-9)`` idiom that used
    to be re-derived by the ring engine, the server's epoch budget and
    :func:`async_upload_schedule`.
    """
    if unit_time <= 0:
        raise ValueError(f"unit_time must be positive, got {unit_time}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    return max(1, int(horizon / unit_time + _EPS))


def completed_units_array(horizon: float, unit_times: np.ndarray) -> np.ndarray:
    """Vectorized :func:`completed_units` over a unit-time array.

    Bit-compatible with the scalar form: identical epsilon, identical
    floor, identical minimum-one clamp.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    return np.maximum(1, (horizon / unit_times + _EPS).astype(np.intp))


#: The queue engine used when a Scheduler is built without an explicit
#: choice: the calendar queue (``"heap"`` remains available as the
#: reference implementation the property tests compare against).
DEFAULT_ENGINE = "calendar"


class Scheduler:
    """Dispatches events in virtual-time order and advances the clock.

    Parameters
    ----------
    clock:
        The clock to drive (the server passes its own so history records
        and event times share one timeline); a fresh clock by default.
    record_trace:
        When True, every dispatched event appends ``(time, kind, tag)`` to
        :attr:`trace` — the determinism tests compare whole traces of
        identically seeded runs.
    engine:
        The queue implementation: ``"calendar"`` (default, the bucketed
        wheel) or ``"heap"`` (the single binary heap).  Both dispatch in
        exactly the same order; the choice is purely a performance knob.
    """

    def __init__(
        self,
        clock: VirtualClock | None = None,
        record_trace: bool = False,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.engine = engine
        self.queue = make_queue(engine)
        self._handlers: dict[str, Callable[[Event], None]] = {}
        self._pending: dict[str, int] = {}
        # Running total of live scheduled members — kept in lockstep with
        # ``_pending`` so the hot loop's emptiness checks (``__bool__``,
        # ``pending()``) are O(1) instead of re-summing a dict.
        self._live = 0
        self._finish_at: float | None = None
        self._stopped = False
        self.events_processed = 0
        self.trace: list[tuple[float, str, Any]] | None = (
            [] if record_trace else None
        )

    # ------------------------------------------------------------- queries

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self.clock.now

    def pending(self, kind: str | None = None) -> int:
        """Live (non-cancelled) scheduled logical events, optionally of one
        kind.  A batched event (see :meth:`at_many`) counts each carried
        member: packing a wave of completions into one entry never changes
        what "pending work" means."""
        if kind is not None:
            return self._pending.get(kind, 0)
        return self._live

    def pending_except(self, *kinds: str) -> int:
        """Live scheduled logical events whose kind is not in ``kinds``."""
        get = self._pending.get
        return self._live - sum(get(k, 0) for k in set(kinds))

    def __bool__(self) -> bool:
        return self._live > 0

    # ---------------------------------------------------------- scheduling

    def at(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event at absolute virtual time ``time``.

        ``time`` may lie in the clock's past (a *lagged* event): it fires
        on the next step without moving the clock backwards, keeping its
        nominal timestamp for ordering and recording.
        """
        ev = self.queue.push(time, kind, payload)
        self._pending[kind] = self._pending.get(kind, 0) + 1
        self._live += 1
        return ev

    def at_many(
        self, time: float, kind: str, ids: np.ndarray, payload: Any = None
    ) -> Event:
        """Schedule one *batched* event carrying an id array.

        The single entry stands for ``len(ids)`` logical events of
        ``kind``, one per device id, sharing a timestamp — the payload is
        the int32 id array itself, or ``payload`` when the members carry
        data beyond their ids (a composite whose first element is the id
        array, e.g. an upload wave's per-member models).  Handlers consume
        the array in order; the pending counters and ``events_processed``
        count the members, so every scheduler-level observable matches
        ``len(ids)`` consecutive :meth:`at` calls at the same time.
        """
        ids = np.ascontiguousarray(ids, dtype=np.int32)
        if ids.ndim != 1 or not len(ids):
            raise ValueError(
                f"at_many needs a non-empty 1-D id array, got shape {ids.shape}"
            )
        n = len(ids)
        ev = self.queue.push(time, kind, ids if payload is None else payload, members=n)
        self._pending[kind] = self._pending.get(kind, 0) + n
        self._live += n
        return ev

    def after(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` virtual-time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.at(self.clock.now + delay, kind, payload)

    def cancel(self, event: Event) -> None:
        """Mark a scheduled event dead; it is skipped when popped.

        Cancelling an event that already fired is a no-op: a timer handle
        held past its dispatch (an upload acknowledged exactly when its
        timeout matured, a crash racing a unit completion) must not
        corrupt the pending counters or resurrect the handle.
        """
        if not event.cancelled and not event.fired:
            event.cancelled = True
            self._pending[event.kind] -= event.members
            self._live -= event.members

    def on(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Register the handler dispatched for ``kind`` events."""
        self._handlers[kind] = handler

    # ----------------------------------------------------------- execution

    def stop(self) -> None:
        """Halt :meth:`run` immediately; queued events are not dispatched."""
        self._stopped = True

    def finish_at(self, time: float) -> None:
        """Drain events up to and including ``time``, then halt :meth:`run`.

        The synchronous servers call this at the last round barrier: eval
        checkpoints that matured during the final round still fire, while
        future-dated ones are discarded instead of dragging the clock past
        the end of training.
        """
        self._finish_at = float(time)

    def _next_live(self) -> Event | None:
        """Earliest non-cancelled event without popping it."""
        while self.queue:
            ev = self.queue.peek()
            if ev.cancelled:
                self.queue.pop()
                continue
            return ev
        return None

    def step(self) -> Event | None:
        """Pop, clock-advance to, and dispatch the earliest event.

        Returns the dispatched event, or None when the queue is empty.
        Events never move the clock backwards: a lagged event fires at the
        current now.
        """
        ev = self._next_live()
        if ev is None:
            return None
        self.queue.pop()
        self._pending[ev.kind] -= ev.members
        self._live -= ev.members
        ev.fired = True
        if ev.time > self.clock.now:
            self.clock.advance_to(ev.time)
        self.events_processed += ev.members
        if self.trace is not None:
            self.trace.append((ev.time, ev.kind, _trace_tag(ev.payload)))
        handler = self._handlers.get(ev.kind)
        if handler is not None:
            handler(ev)
        return ev

    def next_batch(self) -> list[Event]:
        """Pop every event sharing the earliest timestamp, advance the
        clock there, and return them in insertion order *without*
        dispatching handlers.

        The FedHiSyn ring engine consumes batches directly: with zero link
        delay a model completed at time t must be visible to the unit its
        successor starts at t, so all of t's events form one lockstep
        phase (Algorithm 1's synchronous rotation).
        """
        first = self._next_live()
        if first is None:
            return []
        batch: list[Event] = []
        now = first.time
        while True:
            ev = self._next_live()
            if ev is None or ev.time != now:
                break
            self.queue.pop()
            self._pending[ev.kind] -= ev.members
            self._live -= ev.members
            ev.fired = True
            self.events_processed += ev.members
            if self.trace is not None:
                self.trace.append((ev.time, ev.kind, _trace_tag(ev.payload)))
            batch.append(ev)
        if now > self.clock.now:
            self.clock.advance_to(now)
        return batch

    def run(self, max_events: int | None = None) -> int:
        """Dispatch events until the queue drains, :meth:`stop` is called,
        or every remaining event lies beyond a :meth:`finish_at` horizon.
        Returns the number of events dispatched by this call."""
        dispatched = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and dispatched >= max_events:
                break
            ev = self._next_live()
            if ev is None:
                break
            if self._finish_at is not None and ev.time > self._finish_at:
                break
            self.step()
            dispatched += 1
        return dispatched


def _trace_tag(payload: Any) -> Any:
    """A comparable, array-free fingerprint of an event payload.

    Batched payloads (id arrays, or tuples led by one) fingerprint as
    ``(len, first_id, last_id)`` — ndarrays are not ``Sequence`` instances,
    so without the explicit branch they would collapse to ``None`` and the
    determinism-trace tests could not see a batched event's membership.
    """
    if payload is None or isinstance(payload, (int, float, str)):
        return payload
    if isinstance(payload, np.ndarray):
        if not payload.size:
            return (0, None, None)
        flat = payload.ravel()
        return (int(payload.size), flat[0].item(), flat[-1].item())
    if isinstance(payload, Sequence):
        head = payload[0] if len(payload) else None
        if isinstance(head, (int, float, str)):
            return head
        if isinstance(head, np.ndarray):
            return _trace_tag(head)
        return None
    return None
