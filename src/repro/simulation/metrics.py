"""Communication accounting and accuracy tracking.

The paper's headline efficiency metric is "the number of transmitted
models between devices and the server to achieve certain target accuracy"
(Section 6.1), reported *relative to the transfers of one FedAvg round*
(Table 1 caption).  :class:`TransmissionMeter` counts raw model transfers,
:class:`MetricsHistory` records (round, virtual time, cumulative transfers,
accuracy) and answers cost-to-target queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["TransmissionMeter", "MetricsHistory", "ResilienceStats"]


@dataclass
class ResilienceStats:
    """Exact fault/tolerance accounting for one run.

    The servers increment these as faults are injected and tolerated;
    :meth:`snapshot` becomes ``RunResult.resilience``.  The counters obey
    two invariants the tests assert: every injected crash is either
    detected or undetected (``undetected_crashes`` is derived, so
    ``injected == detected + undetected`` holds by construction and
    ``detected_crashes <= injected_crashes`` is checked at snapshot time),
    and retransmissions never exceed ``max_retries`` per original upload.

    ``wasted_time`` is device-time burned on work that produced no update:
    partial units destroyed by crashes plus straggler work discarded by a
    round deadline.
    """

    injected_crashes: int = 0
    detected_crashes: int = 0
    injected_slowdowns: int = 0
    injected_corruptions: int = 0
    uploads_sent: int = 0
    upload_timeouts: int = 0
    retries: int = 0
    dropped_updates: int = 0
    deadline_hits: int = 0
    false_suspicions: int = 0
    wasted_time: float = 0.0

    @property
    def undetected_crashes(self) -> int:
        return self.injected_crashes - self.detected_crashes

    @property
    def injected_total(self) -> int:
        return (
            self.injected_crashes
            + self.injected_slowdowns
            + self.injected_corruptions
        )

    def active(self) -> bool:
        """True once any counter has moved."""
        return any(
            getattr(self, f.name) != 0 for f in fields(self)
        )

    def snapshot(self) -> dict[str, float]:
        if self.detected_crashes > self.injected_crashes:
            raise ValueError(
                "detector accounting broke: "
                f"{self.detected_crashes} detections for "
                f"{self.injected_crashes} injected crashes"
            )
        snap: dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        snap["undetected_crashes"] = self.undetected_crashes
        snap["injected_total"] = self.injected_total
        return snap


class TransmissionMeter:
    """Counts model transfers by channel — on-wire and raw.

    ``server_down``/``server_up`` are device<->server transfers — the
    paper's costed channel.  ``peer`` counts device-to-device ring hops,
    which the paper treats as free but which we record anyway (they are the
    quantity "traded" for server communication in the design principle).
    ``model_units`` scales entries that cost more than one model — SCAFFOLD
    uploads model + control variate, i.e. 2 units (Section 6.1, Metrics).

    With an update codec active the channel passes the payload's *wire*
    size as ``model_units`` and the logical (uncompressed) size as
    ``raw_units``; ``raw_down``/``raw_up``/``raw_peer`` accumulate the
    latter, so ``compression_ratio`` is exactly raw-bytes / wire-bytes.
    Without a codec the two series are identical.  ``bytes_per_unit``
    (one dense model's byte size, set by the server from the trainer's
    flat dimension) converts unit counts to exact byte counts.
    """

    def __init__(self) -> None:
        self.server_down = 0.0
        self.server_up = 0.0
        self.peer = 0.0
        self.raw_down = 0.0
        self.raw_up = 0.0
        self.raw_peer = 0.0
        self.bytes_per_unit: float | None = None

    def record_download(
        self, count: int = 1, model_units: float = 1.0,
        raw_units: float | None = None,
    ) -> None:
        if count < 0 or model_units < 0:
            raise ValueError("counts must be non-negative")
        self.server_down += count * model_units
        self.raw_down += count * (model_units if raw_units is None else raw_units)

    def record_upload(
        self, count: int = 1, model_units: float = 1.0,
        raw_units: float | None = None,
    ) -> None:
        if count < 0 or model_units < 0:
            raise ValueError("counts must be non-negative")
        self.server_up += count * model_units
        self.raw_up += count * (model_units if raw_units is None else raw_units)

    def record_peer(
        self, count: int = 1, model_units: float = 1.0,
        raw_units: float | None = None,
    ) -> None:
        if count < 0 or model_units < 0:
            raise ValueError("counts must be non-negative")
        self.peer += count * model_units
        self.raw_peer += count * (model_units if raw_units is None else raw_units)

    @property
    def server_total(self) -> float:
        """Total device<->server transfers (the Table 1 quantity)."""
        return self.server_down + self.server_up

    @property
    def raw_total(self) -> float:
        """Uncompressed device<->server transfers (logical models moved)."""
        return self.raw_down + self.raw_up

    @property
    def compression_ratio(self) -> float:
        """raw/wire over every channel; 1.0 when nothing has moved."""
        wire = self.server_total + self.peer
        raw = self.raw_total + self.raw_peer
        return raw / wire if wire > 0.0 else 1.0

    @property
    def wire_bytes(self) -> float | None:
        """Exact bytes that crossed any link; None until the server has
        told the meter how big one dense model is."""
        if self.bytes_per_unit is None:
            return None
        return (self.server_total + self.peer) * self.bytes_per_unit

    @property
    def raw_bytes(self) -> float | None:
        """Bytes the same traffic would have cost uncompressed."""
        if self.bytes_per_unit is None:
            return None
        return (self.raw_total + self.raw_peer) * self.bytes_per_unit

    def snapshot(self) -> dict[str, float]:
        snap = {
            "server_down": self.server_down,
            "server_up": self.server_up,
            "server_total": self.server_total,
            "peer": self.peer,
            "raw_down": self.raw_down,
            "raw_up": self.raw_up,
            "raw_total": self.raw_total,
            "raw_peer": self.raw_peer,
            "compression_ratio": self.compression_ratio,
        }
        if self.bytes_per_unit is not None:
            snap["wire_bytes"] = self.wire_bytes
            snap["raw_bytes"] = self.raw_bytes
        return snap


@dataclass
class MetricsHistory:
    """Per-round records of one training run, plus virtual-time checkpoints.

    Two eval processes coexist: the round-indexed series (``rounds`` /
    ``times`` / ...) sampled every ``eval_every`` rounds or aggregations,
    and the *time-indexed* checkpoint series sampled every
    ``eval_time_every`` units of virtual time by the scheduler's
    ``eval_checkpoint`` events — the paper's real quantity of interest
    (time-to-accuracy) measured directly rather than read off round ends.
    """

    rounds: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    server_transfers: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    checkpoint_times: list[float] = field(default_factory=list)
    checkpoint_transfers: list[float] = field(default_factory=list)
    checkpoint_accuracies: list[float] = field(default_factory=list)
    checkpoint_losses: list[float] = field(default_factory=list)

    def record(
        self,
        round_idx: int,
        time: float,
        server_transfers: float,
        accuracy: float,
        loss: float = float("nan"),
    ) -> None:
        if self.rounds and round_idx <= self.rounds[-1]:
            raise ValueError("round indices must be strictly increasing")
        if self.server_transfers and server_transfers < self.server_transfers[-1]:
            raise ValueError("cumulative transfers cannot decrease")
        self.rounds.append(round_idx)
        self.times.append(time)
        self.server_transfers.append(server_transfers)
        self.accuracies.append(accuracy)
        self.losses.append(loss)

    def record_time_checkpoint(
        self,
        time: float,
        server_transfers: float,
        accuracy: float,
        loss: float = float("nan"),
    ) -> None:
        """One ``eval_checkpoint`` event: the deployed model's metrics at a
        nominal virtual time.  Checkpoint times are non-decreasing (equal
        times are legal — several checkpoints can mature inside one
        synchronous round's clock jump and share its evaluation)."""
        if self.checkpoint_times and time < self.checkpoint_times[-1]:
            raise ValueError("checkpoint times must be non-decreasing")
        if (
            self.checkpoint_transfers
            and server_transfers < self.checkpoint_transfers[-1]
        ):
            raise ValueError("cumulative transfers cannot decrease")
        self.checkpoint_times.append(time)
        self.checkpoint_transfers.append(server_transfers)
        self.checkpoint_accuracies.append(accuracy)
        self.checkpoint_losses.append(loss)

    @property
    def final_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("empty history")
        return self.accuracies[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("empty history")
        return max(self.accuracies)

    def rounds_to_target(self, target: float) -> int | None:
        """First recorded round index reaching ``target`` accuracy, else None."""
        for r, a in zip(self.rounds, self.accuracies):
            if a >= target:
                return r
        return None

    def transfers_to_target(self, target: float) -> float | None:
        """Cumulative server transfers when ``target`` is first reached."""
        for t, a in zip(self.server_transfers, self.accuracies):
            if a >= target:
                return t
        return None

    def time_to_target(self, target: float) -> float | None:
        """Earliest virtual time at which ``target`` accuracy is recorded.

        The time-to-accuracy metric: both eval processes are consulted —
        the round-indexed series and the time-indexed checkpoints — and
        the earlier hit wins (each series is time-sorted, so the first hit
        per series suffices).  None when the run never got there.
        """
        best: float | None = None
        for t, a in zip(self.times, self.accuracies):
            if a >= target:
                best = t
                break
        for t, a in zip(self.checkpoint_times, self.checkpoint_accuracies):
            if a >= target:
                if best is None or t < best:
                    best = t
                break
        return best

    def relative_cost_to_target(self, target: float, per_round_unit: float) -> float | None:
        """Table 1's metric: transfers-to-target / transfers-per-FedAvg-round."""
        if per_round_unit <= 0:
            raise ValueError("per_round_unit must be positive")
        t = self.transfers_to_target(target)
        return None if t is None else t / per_round_unit

    def to_dict(self) -> dict[str, list]:
        """JSON-serializable copy of every recorded series."""
        return {
            "rounds": list(self.rounds),
            "times": list(self.times),
            "server_transfers": list(self.server_transfers),
            "accuracies": list(self.accuracies),
            "losses": list(self.losses),
            "checkpoint_times": list(self.checkpoint_times),
            "checkpoint_transfers": list(self.checkpoint_transfers),
            "checkpoint_accuracies": list(self.checkpoint_accuracies),
            "checkpoint_losses": list(self.checkpoint_losses),
        }

    @classmethod
    def from_dict(cls, data: dict[str, list]) -> "MetricsHistory":
        """Inverse of :meth:`to_dict` — bypasses :meth:`record` validation
        since the series were validated when first recorded.  Checkpoint
        series default to empty for payloads written before they existed
        (old campaign caches, pre-refactor goldens)."""
        history = cls()
        history.rounds = [int(r) for r in data["rounds"]]
        history.times = [float(t) for t in data["times"]]
        history.server_transfers = [float(t) for t in data["server_transfers"]]
        history.accuracies = [float(a) for a in data["accuracies"]]
        history.losses = [float(l) for l in data["losses"]]
        history.checkpoint_times = [float(t) for t in data.get("checkpoint_times", [])]
        history.checkpoint_transfers = [
            float(t) for t in data.get("checkpoint_transfers", [])
        ]
        history.checkpoint_accuracies = [
            float(a) for a in data.get("checkpoint_accuracies", [])
        ]
        history.checkpoint_losses = [
            float(l) for l in data.get("checkpoint_losses", [])
        ]
        return history

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "rounds": np.asarray(self.rounds),
            "times": np.asarray(self.times),
            "server_transfers": np.asarray(self.server_transfers),
            "accuracies": np.asarray(self.accuracies),
            "losses": np.asarray(self.losses),
            "checkpoint_times": np.asarray(self.checkpoint_times),
            "checkpoint_transfers": np.asarray(self.checkpoint_transfers),
            "checkpoint_accuracies": np.asarray(self.checkpoint_accuracies),
            "checkpoint_losses": np.asarray(self.checkpoint_losses),
        }
