"""Event-driven execution of one FedHiSyn ring round, plus async schedules.

:class:`RingRoundEngine` realizes Algorithm 1's inner loop (lines 7-16)
with real virtual-time semantics rather than the paper's lockstep
pseudocode: each device trains its next unit from the newest model in its
buffer at unit *start*; models arriving mid-unit are queued and take effect
on the next unit; every completed unit is forwarded to the ring successor
after the link delay.

The engine is algorithm-agnostic about what "training" means — it calls
``device.run_unit`` — so ablations (e.g. averaging instead of direct use)
plug in via the ``combine`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.device.device import Device
from repro.device.fleet import DeviceFleet
from repro.device.network import LinkDelayModel, UniformDelay
from repro.simulation.scheduler import (
    PEER_DELIVER,
    UNIT_COMPLETE,
    Scheduler,
    completed_units,
)
from repro.utils.rng import SeedSequenceFactory

__all__ = ["RingRoundEngine", "RingRoundStats", "async_upload_schedule"]

#: Keyed rng stream for peer-hop message drops, disjoint from the server's
#: streams (participant sampling uses ``(round, 1)``, ring building
#: ``(round, 2)``, availability ``(round, 3)``, server drops ``(0, 101)``).
_PEER_DROP_STREAM_KEY = (0, 102)


@dataclass
class RingRoundStats:
    """What happened during one ring round.

    ``peer_units`` is the on-wire size of all forwards in dense-model
    units — equal to ``peer_sends`` without a codec, smaller with one.
    """

    units_completed: dict[int, int]
    peer_sends: int
    end_time: float
    peer_units: float = 0.0


def _direct_use(buffered: np.ndarray, own: np.ndarray | None) -> np.ndarray:
    """Paper default (Observation 1): train the received model directly."""
    return buffered


def _average(buffered: np.ndarray, own: np.ndarray | None) -> np.ndarray:
    """Ablation: average the received model with the device's own."""
    if own is None:
        return buffered
    return 0.5 * (buffered + own)


class RingRoundEngine:
    """Executes ring-topology rounds over a set of devices.

    Parameters
    ----------
    devices:
        All devices indexed by ``device_id``.
    delay_model:
        Link delays for peer hops (paper simplification: uniform 0).
    epochs_per_unit:
        Local epochs of one training unit (the paper's 5).
    combine:
        How a device merges the newest buffered model with its own before
        training — ``"direct"`` (paper) or ``"average"`` (Fig. 2 ablation).
    env:
        Optional :class:`~repro.env.environment.Environment` supplying the
        peer-hop delay model and message-drop probability.  Explicit
        ``delay_model``/``drop_prob`` arguments take precedence, so the
        ablation benches can still pin either independently.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        delay_model: LinkDelayModel | None = None,
        epochs_per_unit: int = 5,
        combine: str = "direct",
        drop_prob: float | None = None,
        drop_seed: int = 0,
        env=None,
    ) -> None:
        if epochs_per_unit <= 0:
            raise ValueError("epochs_per_unit must be positive")
        if env is not None:
            if delay_model is None:
                delay_model = env.network
            if drop_prob is None:
                drop_prob = env.network.drop_prob
        drop_prob = 0.0 if drop_prob is None else drop_prob
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        # A DeviceFleet is kept as-is: participants resolve through its
        # O(1) id lookup and facades materialize lazily, so a round over
        # a small slice of a huge population never touches idle devices.
        self._fleet = devices if isinstance(devices, DeviceFleet) else None
        self.devices = devices if self._fleet is not None else list(devices)
        self.delay_model = delay_model if delay_model is not None else UniformDelay(0.0)
        self.epochs_per_unit = epochs_per_unit
        combiners: dict[str, Callable] = {"direct": _direct_use, "average": _average}
        if combine not in combiners:
            raise ValueError(f"combine must be one of {sorted(combiners)}")
        self._combine = combiners[combine]
        # Failure injection: each peer hop is independently lost with
        # probability drop_prob.  A lost hop is harmless to liveness —
        # the successor simply continues its own model (Eq. 7).  The rng
        # is a SeedSequenceFactory keyed stream — the same seed discipline
        # as the server's (0, 101) drop stream — so ring drops reproduce
        # under the experiment seed like every other stochastic component.
        # ``drop_seed`` keeps its name and place in the signature (the
        # compat shim: existing call sites and golden regeneration stay
        # deterministic without edits).
        self.drop_prob = drop_prob
        self._drop_rng = SeedSequenceFactory(drop_seed).generator(
            *_PEER_DROP_STREAM_KEY
        )
        self.dropped_sends = 0

    def run_round(
        self,
        rings: Sequence[Sequence[int]],
        global_weights: np.ndarray | dict[int, np.ndarray],
        duration: float,
        round_idx: int = 0,
        codec=None,
        codec_reference: np.ndarray | None = None,
    ) -> RingRoundStats:
        """One round: every listed device starts from ``global_weights``,
        trains/forwards along its ring until ``duration`` elapses.

        ``global_weights`` is either one vector broadcast to everyone
        (FedHiSyn's server round) or a per-device-id dict (decentralized
        continuation, used by the Section 3 observation experiments).

        ``codec`` (an :class:`~repro.compression.base.UpdateCodec`, or
        None/identity for dense hops) compresses every ring forward
        against ``codec_reference`` — the round's shared decoded broadcast
        (None after a lossy broadcast: hops then go dense).  The successor
        receives the *decoded* model and the hop's link time scales with
        the encoded size; ``stats.peer_units`` accumulates the on-wire
        total for the server's peer meter.

        Every device completes at least one unit (Algorithm 1 line 11
        enters the loop whenever the remaining budget is positive).  After
        the call each device's ``weights`` holds its last trained model —
        the vector it would upload to the server.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        participants = [d for ring in rings for d in ring]
        if len(set(participants)) != len(participants):
            raise ValueError("a device appears in more than one ring position")

        successor: dict[int, int] = {}
        for ring in rings:
            if not ring:
                continue
            for pos, dev in enumerate(ring):
                successor[dev] = ring[(pos + 1) % len(ring)]

        if self._fleet is not None:
            by_id = {i: self._fleet.device(i) for i in participants}
        else:
            by_id = {d.device_id: d for d in self.devices}
        # Per-device mutable state for the event loop.
        units_done = {i: 0 for i in participants}
        units_budget: dict[int, int] = {}
        unit_start_model: dict[int, np.ndarray] = {}

        # A fresh Scheduler per round: round-relative virtual time starts
        # at zero, and the (time, insertion) total order of the shared
        # runtime is exactly the discipline this loop always relied on.
        sched = Scheduler()
        for dev_id in participants:
            dev = by_id[dev_id]
            if isinstance(global_weights, dict):
                dev.reset_buffer(global_weights[dev_id])
            else:
                dev.reset_buffer(global_weights)
            # floor(duration / t_i) units, minimum one (Alg 1 line 11).
            units_budget[dev_id] = completed_units(duration, dev.unit_time)
            unit_start_model[dev_id] = dev.buffer[-1]
            dev.buffer.clear()  # engine owns the "arrived mid-unit" queue
            sched.at(dev.unit_time, UNIT_COMPLETE, dev_id)

        if codec is not None and codec.is_identity:
            codec = None  # dense fast path below is bit-identical
        peer_sends = 0
        peer_units = 0.0
        while sched:
            # Drain every event sharing the earliest timestamp as one batch:
            # with zero link delay a model completed at time t must be
            # available to the unit its successor *starts* at time t — the
            # lockstep rotation of Algorithm 1's synchronous loop.
            batch = sched.next_batch()
            now = sched.now
            completed: list[int] = []
            for ev in batch:
                if ev.kind == PEER_DELIVER:
                    dst, weights = ev.payload
                    by_id[dst].receive(weights)
                else:
                    completed.append(ev.payload)

            # Phase 1: train every unit that completed at `now` (each uses
            # the start model fixed when its unit began).
            instant: list[tuple[int, np.ndarray]] = []
            for dev_id in completed:
                dev = by_id[dev_id]
                unit_idx = units_done[dev_id]
                start = self._combine(unit_start_model[dev_id], dev.weights)
                trained = dev.run_unit(
                    start, self.epochs_per_unit, round_idx, unit_idx
                )
                units_done[dev_id] = unit_idx + 1
                succ = successor[dev_id]
                if succ != dev_id:  # singleton rings do not self-send
                    peer_sends += 1
                    if codec is None:
                        forwarded, hop_units = trained, 1.0
                    else:
                        enc = codec.encode(
                            trained, key=("peer", dev_id),
                            reference=codec_reference,
                        )
                        forwarded, hop_units = codec.decode(enc), enc.model_units
                    peer_units += hop_units
                    if self.drop_prob and self._drop_rng.random() < self.drop_prob:
                        self.dropped_sends += 1
                    else:
                        if codec is None:
                            delay = self.delay_model.delay(dev_id, succ)
                        else:
                            # A NetworkModel scales link time with payload
                            # size; plain LinkDelayModels have one per-hop
                            # delay regardless of size.
                            transfer = getattr(
                                self.delay_model, "transfer_time", None
                            )
                            delay = (
                                transfer(dev_id, succ, hop_units)
                                if transfer is not None
                                else self.delay_model.delay(dev_id, succ)
                            )
                        if delay == 0.0:
                            instant.append((succ, forwarded))
                        else:
                            sched.at(now + delay, PEER_DELIVER, (succ, forwarded))

            # Phase 2: zero-delay hops land before anyone starts a new unit.
            for dst, weights in instant:
                by_id[dst].receive(weights)

            # Phase 3: schedule next units — newest arrival wins, else the
            # device continues its own model (Eq. 7).
            for dev_id in completed:
                dev = by_id[dev_id]
                if units_done[dev_id] < units_budget[dev_id]:
                    nxt = dev.buffer[-1] if dev.buffer else dev.weights
                    dev.buffer.clear()
                    unit_start_model[dev_id] = nxt
                    sched.at(now + dev.unit_time, UNIT_COMPLETE, dev_id)

        return RingRoundStats(
            units_completed=units_done,
            peer_sends=peer_sends,
            end_time=sched.now,
            peer_units=peer_units if codec is not None else float(peer_sends),
        )


def async_upload_schedule(
    unit_times: dict[int, float] | Sequence[float],
    horizon: float,
) -> list[tuple[float, int]]:
    """Upload times for continuously training devices over ``[0, horizon]``.

    Device ``i`` uploads at ``k * t_i`` for ``k = 1..floor(horizon / t_i)``
    — the arrival process of TAFedAvg and of FedAT's tier updates.  Returns
    ``(time, device_id)`` sorted by time (ties by device id), and
    guarantees every device appears at least once (the slowest device's
    single upload defines the horizon in the paper's setup).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if isinstance(unit_times, dict):
        items = sorted(unit_times.items())
    else:
        items = list(enumerate(unit_times))
    if not items:
        return []
    schedule: list[tuple[float, int]] = []
    for dev_id, t in items:
        if t <= 0:
            raise ValueError(f"unit time for device {dev_id} must be positive")
        k_max = completed_units(horizon, t)
        schedule.extend((k * t, dev_id) for k in range(1, k_max + 1))
    schedule.sort(key=lambda pair: (pair[0], pair[1]))
    return schedule
