"""Run-result record shared by all algorithms and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.simulation.metrics import MetricsHistory

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one federated training run.

    ``per_round_unit`` is the number of server transfers a single FedAvg
    round with the same participant count would perform; Table 1 reports
    costs relative to it.  ``transport`` is the transmission meter's final
    snapshot — per-channel on-wire and raw (uncompressed) unit counts,
    exact byte totals and the achieved compression ratio; empty for
    results deserialized from payloads that predate the codec subsystem.
    ``resilience`` is the fault/tolerance accounting block
    (:class:`~repro.simulation.metrics.ResilienceStats` snapshot —
    injected/detected/retried/dropped counts, deadline hits, wasted
    device-time); empty when no fault model or deadline was active, and
    for payloads that predate the fault subsystem.
    ``transport_backend`` names the transport that executed the run
    (``"sim"`` — also the default for older payloads — or ``"live"``,
    in which case ``transport`` additionally carries the ``live_``-
    prefixed datagram-level counters).
    """

    method: str
    dataset: str
    history: MetricsHistory
    final_weights: np.ndarray
    per_round_unit: float
    config: dict[str, Any] = field(default_factory=dict)
    transport: dict[str, float] = field(default_factory=dict)
    resilience: dict[str, float] = field(default_factory=dict)
    transport_backend: str = "sim"

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy

    def cost_to_target(self, target: float) -> float | None:
        """Relative transmission cost to reach ``target`` (Table 1 cells)."""
        return self.history.relative_cost_to_target(target, self.per_round_unit)

    def time_to_target(self, target: float) -> float | None:
        """Virtual time to first reach ``target`` accuracy — the
        time-to-accuracy companion of :meth:`cost_to_target`, fed by both
        the round-end evals and the scheduler's time-indexed checkpoints."""
        return self.history.time_to_target(target)

    def table_cell(self, target: float) -> str:
        """Render the Table 1 cell: "cost(final%)" with X for unreached."""
        cost = self.cost_to_target(target)
        acc = self.final_accuracy * 100.0
        if cost is None:
            return f"X({acc:.2f}%)"
        return f"{cost:.1f}({acc:.2f}%)"

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-serializable form (campaign cache / worker wire
        format).  Weights are stored as a plain float list: Python's JSON
        encoder emits ``repr``-exact doubles, so ``from_dict`` reconstructs
        bit-identical float64 arrays."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "history": self.history.to_dict(),
            "final_weights": np.asarray(self.final_weights, dtype=np.float64).tolist(),
            "per_round_unit": self.per_round_unit,
            "config": dict(self.config),
            "transport": dict(self.transport),
            "resilience": dict(self.resilience),
            "transport_backend": self.transport_backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict`.  ``transport`` defaults to empty
        for payloads written before exact byte accounting existed."""
        return cls(
            method=data["method"],
            dataset=data["dataset"],
            history=MetricsHistory.from_dict(data["history"]),
            final_weights=np.asarray(data["final_weights"], dtype=np.float64),
            per_round_unit=float(data["per_round_unit"]),
            config=dict(data["config"]),
            transport=dict(data.get("transport", {})),
            resilience=dict(data.get("resilience", {})),
            transport_backend=data.get("transport_backend", "sim"),
        )

    def summary(self) -> dict[str, Any]:
        out = {
            "method": self.method,
            "dataset": self.dataset,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "total_server_transfers": (
                self.history.server_transfers[-1] if self.history.server_transfers else 0.0
            ),
            "total_virtual_time": (
                self.history.times[-1] if self.history.times else 0.0
            ),
            "rounds": len(self.history.rounds),
        }
        if self.transport_backend != "sim":
            out["transport_backend"] = self.transport_backend
        if self.transport:
            if self.transport.get("wire_bytes") is not None:
                out["wire_bytes"] = self.transport["wire_bytes"]
                out["raw_bytes"] = self.transport["raw_bytes"]
            out["compression_ratio"] = self.transport.get(
                "compression_ratio", 1.0
            )
        if self.resilience:
            out["faults_injected"] = self.resilience.get("injected_total", 0)
            out["deadline_hits"] = self.resilience.get("deadline_hits", 0)
            out["wasted_time"] = self.resilience.get("wasted_time", 0.0)
        return out
