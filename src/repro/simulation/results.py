"""Run-result record shared by all algorithms and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.simulation.metrics import MetricsHistory

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one federated training run.

    ``per_round_unit`` is the number of server transfers a single FedAvg
    round with the same participant count would perform; Table 1 reports
    costs relative to it.
    """

    method: str
    dataset: str
    history: MetricsHistory
    final_weights: np.ndarray
    per_round_unit: float
    config: dict[str, Any] = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy

    def cost_to_target(self, target: float) -> float | None:
        """Relative transmission cost to reach ``target`` (Table 1 cells)."""
        return self.history.relative_cost_to_target(target, self.per_round_unit)

    def table_cell(self, target: float) -> str:
        """Render the Table 1 cell: "cost(final%)" with X for unreached."""
        cost = self.cost_to_target(target)
        acc = self.final_accuracy * 100.0
        if cost is None:
            return f"X({acc:.2f}%)"
        return f"{cost:.1f}({acc:.2f}%)"

    def summary(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "total_server_transfers": (
                self.history.server_transfers[-1] if self.history.server_transfers else 0.0
            ),
            "rounds": len(self.history.rounds),
        }
