"""Dataset container and batching.

A :class:`ClassificationDataset` is an immutable-by-convention pair of a
feature array ``x`` (either flat ``(N, D)`` or image ``(N, C, H, W)``) and an
integer label vector ``y``.  Device shards are *views* onto the parent
arrays via index selection — no per-device copies of the data (guide: views
over copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["ClassificationDataset", "DataBatchIterator", "train_test_split"]


@dataclass
class ClassificationDataset:
    """Features + integer labels + class count."""

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x and y disagree on N: {self.x.shape[0]} vs {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {self.y.shape}")
        if self.num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {self.num_classes}")
        if self.y.size and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Shape of one sample (without the batch axis)."""
        return self.x.shape[1:]

    @property
    def flat_features(self) -> int:
        """Number of scalar features per sample."""
        return int(np.prod(self.feature_shape))

    def subset(self, indices: np.ndarray, name: str | None = None) -> "ClassificationDataset":
        """Select samples by index (fancy indexing copies; indices stay small)."""
        indices = np.asarray(indices, dtype=np.intp)
        return ClassificationDataset(
            self.x[indices],
            self.y[indices],
            self.num_classes,
            name=name if name is not None else self.name,
        )

    def class_counts(self) -> np.ndarray:
        """Histogram of labels (length ``num_classes``)."""
        return np.bincount(self.y, minlength=self.num_classes)

    def shuffled(self, seed: int | np.random.Generator | None = 0) -> "ClassificationDataset":
        """A shuffled copy (used before splitting)."""
        rng = as_generator(seed)
        perm = rng.permutation(len(self))
        return self.subset(perm)


@dataclass
class DataBatchIterator:
    """Reshuffling mini-batch iterator over a dataset.

    Each epoch reshuffles with its own derived stream so traversal order is
    reproducible yet differs between epochs.
    """

    dataset: ClassificationDataset
    batch_size: int
    seed: int | np.random.Generator | None = 0
    drop_last: bool = False
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        self._rng = as_generator(self.seed)

    def epoch(self):
        """Yield ``(x_batch, y_batch)`` covering the dataset once."""
        n = len(self.dataset)
        order = self._rng.permutation(n)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]

    def num_batches(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)


def train_test_split(
    dataset: ClassificationDataset,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    stratified: bool = True,
) -> tuple[ClassificationDataset, ClassificationDataset]:
    """Split into train/test; stratified keeps per-class proportions.

    The paper assumes "the data distributions of the training set and test
    set of overall data are the same" (Section 3.2) — stratification
    enforces exactly that.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    n = len(dataset)
    if stratified:
        test_idx: list[np.ndarray] = []
        train_idx: list[np.ndarray] = []
        for k in range(dataset.num_classes):
            members = np.flatnonzero(dataset.y == k)
            members = rng.permutation(members)
            cut = int(round(len(members) * test_fraction))
            test_idx.append(members[:cut])
            train_idx.append(members[cut:])
        test = np.concatenate(test_idx) if test_idx else np.empty(0, dtype=np.intp)
        train = np.concatenate(train_idx) if train_idx else np.empty(0, dtype=np.intp)
        test = rng.permutation(test)
        train = rng.permutation(train)
    else:
        perm = rng.permutation(n)
        cut = int(round(n * test_fraction))
        test, train = perm[:cut], perm[cut:]
    return (
        dataset.subset(train, name=f"{dataset.name}/train"),
        dataset.subset(test, name=f"{dataset.name}/test"),
    )
