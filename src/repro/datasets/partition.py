"""Partition a dataset across federated devices.

Implements the splits used in the paper:

* **IID** — a uniform random equal split.
* **Dirichlet(beta)** — for every class, the proportion assigned to each
  device is drawn from ``Dir(beta * 1)``; small beta = highly skewed label
  distributions (the paper uses beta in {0.3, 0.8}).
* **Shard** — the classic FedAvg pathological split (sort by label, deal
  out contiguous shards), provided for completeness.

All partitioners return a list of index arrays into the parent dataset and
satisfy the *conservation* invariant: indices are disjoint and their union
is every sample exactly once (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.utils.rng import as_generator

__all__ = [
    "iid_partition",
    "contiguous_partition",
    "dirichlet_partition",
    "shard_partition",
    "partition_by_name",
    "label_distribution",
]


def _validate(dataset: ClassificationDataset, num_devices: int) -> None:
    if num_devices <= 0:
        raise ValueError(f"num_devices must be positive, got {num_devices}")
    if len(dataset) < num_devices:
        raise ValueError(
            f"cannot split {len(dataset)} samples across {num_devices} devices"
        )


def iid_partition(
    dataset: ClassificationDataset,
    num_devices: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Uniform random split into ``num_devices`` near-equal shards."""
    _validate(dataset, num_devices)
    rng = as_generator(seed)
    perm = rng.permutation(len(dataset))
    return [np.sort(part) for part in np.array_split(perm, num_devices)]


def contiguous_partition(
    dataset: ClassificationDataset,
    num_devices: int,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """Deal consecutive index runs: device ``i`` gets the ``i``-th
    near-equal slice of ``[0, len(dataset))`` in order.

    The million-device scheme: every shard is a *view* of one shared
    ``arange`` (no per-device index copies), and because the shards are
    already in fleet order :class:`~repro.device.fleet.DeviceFleet` skips
    its gather and aliases the dataset block — building a fleet costs no
    second copy of the data.  Statistically equivalent to IID when the
    dataset's own order is unstructured (synthetic generators draw
    samples i.i.d.), which is what fleet-scale profiles use; ``seed`` is
    accepted for dispatch uniformity and never drawn from.
    """
    _validate(dataset, num_devices)
    return np.array_split(np.arange(len(dataset), dtype=np.intp), num_devices)


def dirichlet_partition(
    dataset: ClassificationDataset,
    num_devices: int,
    beta: float,
    seed: int | np.random.Generator | None = 0,
    min_samples: int = 1,
    max_retries: int = 100,
) -> list[np.ndarray]:
    """Dirichlet(beta) label-skew split (the paper's Non-IID setting).

    For each class ``k`` draw device proportions ``p ~ Dir(beta, ..., beta)``
    and deal that class's samples out accordingly.  Retries (with fresh
    draws) until every device holds at least ``min_samples`` samples, the
    standard practice for this construction.
    """
    _validate(dataset, num_devices)
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if min_samples * num_devices > len(dataset):
        raise ValueError("min_samples * num_devices exceeds dataset size")
    rng = as_generator(seed)

    for _ in range(max_retries):
        buckets: list[list[np.ndarray]] = [[] for _ in range(num_devices)]
        for k in range(dataset.num_classes):
            members = np.flatnonzero(dataset.y == k)
            if members.size == 0:
                continue
            members = rng.permutation(members)
            proportions = rng.dirichlet(np.full(num_devices, beta))
            # Cumulative cut points; the final bucket absorbs rounding.
            cuts = (np.cumsum(proportions)[:-1] * members.size).astype(np.intp)
            for dev, part in enumerate(np.split(members, cuts)):
                if part.size:
                    buckets[dev].append(part)
        parts = [
            np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.intp)
            for b in buckets
        ]
        if min(p.size for p in parts) >= min_samples:
            return parts
    # Extreme skew (tiny beta) can starve some device in every draw.
    # Repair the last draw instead of failing: move samples one at a time
    # from the largest shard to each starved one.  This preserves
    # conservation and barely perturbs the drawn distribution.
    while min(p.size for p in parts) < min_samples:
        smallest = min(range(num_devices), key=lambda i: parts[i].size)
        largest = max(range(num_devices), key=lambda i: parts[i].size)
        if parts[largest].size <= min_samples:  # pragma: no cover - guarded by
            raise RuntimeError("cannot repair partition")  # the min_samples check
        moved, parts[largest] = parts[largest][-1], parts[largest][:-1]
        parts[smallest] = np.sort(np.append(parts[smallest], moved))
    return parts


def shard_partition(
    dataset: ClassificationDataset,
    num_devices: int,
    shards_per_device: int = 2,
    seed: int | np.random.Generator | None = 0,
) -> list[np.ndarray]:
    """McMahan et al.'s pathological split: sort by label, deal out shards."""
    _validate(dataset, num_devices)
    if shards_per_device <= 0:
        raise ValueError("shards_per_device must be positive")
    rng = as_generator(seed)
    num_shards = num_devices * shards_per_device
    if num_shards > len(dataset):
        raise ValueError("more shards than samples")
    # Stable sort by label; ties keep dataset order.
    order = np.argsort(dataset.y, kind="stable")
    shards = np.array_split(order, num_shards)
    assignment = rng.permutation(num_shards)
    parts = []
    for dev in range(num_devices):
        mine = assignment[dev * shards_per_device : (dev + 1) * shards_per_device]
        parts.append(np.sort(np.concatenate([shards[s] for s in mine])))
    return parts


def partition_by_name(
    name: str,
    dataset: ClassificationDataset,
    num_devices: int,
    seed: int | np.random.Generator | None = 0,
    **kwargs,
) -> list[np.ndarray]:
    """Dispatch on the setting names: 'iid', 'contiguous', 'dirichlet',
    'shard'."""
    name = name.lower()
    if name == "iid":
        return iid_partition(dataset, num_devices, seed=seed)
    if name == "contiguous":
        return contiguous_partition(dataset, num_devices, seed=seed)
    if name == "dirichlet":
        beta = kwargs.pop("beta", 0.3)
        return dirichlet_partition(dataset, num_devices, beta=beta, seed=seed, **kwargs)
    if name == "shard":
        return shard_partition(dataset, num_devices, seed=seed, **kwargs)
    raise ValueError(f"unknown partition scheme {name!r}")


def label_distribution(
    dataset: ClassificationDataset, parts: list[np.ndarray]
) -> np.ndarray:
    """Per-device label histograms, shape (num_devices, num_classes).

    Feeds the Eq. (4) divergence metric in :mod:`repro.analysis.divergence`.
    """
    out = np.zeros((len(parts), dataset.num_classes), dtype=np.int64)
    for i, idx in enumerate(parts):
        if idx.size:
            out[i] = np.bincount(dataset.y[idx], minlength=dataset.num_classes)
    return out
