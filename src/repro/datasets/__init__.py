"""Dataset substrate: synthetic stand-ins for MNIST/EMNIST/CIFAR plus
IID / Dirichlet / shard partitioners.

The paper evaluates on MNIST, EMNIST-Letters, CIFAR10 and CIFAR100, split
across 100 devices with label distributions drawn from a Dirichlet(beta).
Offline, we generate synthetic classification tasks with the same class
counts and the same difficulty *ordering* (see DESIGN.md substitution
table); the partitioners reproduce the paper's splits exactly.
"""

from repro.datasets.core import ClassificationDataset, DataBatchIterator, train_test_split
from repro.datasets.partition import (
    dirichlet_partition,
    iid_partition,
    label_distribution,
    partition_by_name,
    shard_partition,
)
from repro.datasets.registry import DATASETS, make_dataset
from repro.datasets.synthetic import (
    SyntheticSpec,
    cifar10_like,
    cifar100_like,
    emnist_like,
    make_synthetic,
    mnist_like,
)

__all__ = [
    "ClassificationDataset",
    "DataBatchIterator",
    "train_test_split",
    "iid_partition",
    "dirichlet_partition",
    "shard_partition",
    "partition_by_name",
    "label_distribution",
    "SyntheticSpec",
    "make_synthetic",
    "mnist_like",
    "emnist_like",
    "cifar10_like",
    "cifar100_like",
    "DATASETS",
    "make_dataset",
]
