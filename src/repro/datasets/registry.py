"""Name-based dataset construction for experiment configs.

Maps the paper's dataset names onto the synthetic generators with the
model family and target accuracy each uses in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.datasets.synthetic import cifar10_like, cifar100_like, emnist_like, mnist_like

__all__ = ["DatasetEntry", "DATASETS", "make_dataset"]


@dataclass(frozen=True)
class DatasetEntry:
    """Generator plus the experiment metadata tied to a dataset name."""

    factory: Callable[..., ClassificationDataset]
    model_family: str  # "mlp" (MNIST/EMNIST role) or "cnn" (CIFAR role)
    paper_target_accuracy: float  # Table 1 target on the real dataset
    paper_rounds: int  # Table 1 round budget


DATASETS: dict[str, DatasetEntry] = {
    "mnist_like": DatasetEntry(mnist_like, "mlp", 0.96, 100),
    "emnist_like": DatasetEntry(emnist_like, "mlp", 0.86, 100),
    "cifar10_like": DatasetEntry(cifar10_like, "cnn", 0.75, 150),
    "cifar100_like": DatasetEntry(cifar100_like, "cnn", 0.33, 150),
}


def make_dataset(
    name: str,
    num_samples: int | None = None,
    seed: int | np.random.Generator | None = 0,
    **kwargs,
) -> ClassificationDataset:
    """Build the named dataset; ``num_samples`` overrides the default size."""
    try:
        entry = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if num_samples is not None:
        kwargs["num_samples"] = num_samples
    return entry.factory(seed=seed, **kwargs)
