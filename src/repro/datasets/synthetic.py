"""Synthetic stand-ins for the paper's four datasets.

Construction
------------
Each class ``k`` gets a latent prototype ``mu_k`` drawn on a sphere of
radius ``separation``; a sample of class ``k`` is

``x = P (mu_k + sigma_within * z) + sigma_noise * n``

with ``z, n ~ N(0, I)`` and ``P`` a fixed random projection from latent to
feature space.  An optional elementwise ``tanh`` squashing makes the task
non-linearly separable (CIFAR-like difficulty).

Difficulty ordering (MNIST < EMNIST < CIFAR10 < CIFAR100) is reproduced by
class count, separation, noise scale, and squashing — calibrated so a small
MLP/CNN lands in the paper's relative accuracy bands (high 90s for
MNIST-like, ~80% CIFAR10-like, <50% CIFAR100-like at reduced scale).

These generators do **not** claim to reproduce the pixel statistics of the
real datasets — only the properties the paper's evaluation manipulates:
class structure, label-distribution skew across devices, and relative task
difficulty (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.utils.rng import as_generator

__all__ = [
    "SyntheticSpec",
    "make_synthetic",
    "mnist_like",
    "emnist_like",
    "cifar10_like",
    "cifar100_like",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Full parameterization of one synthetic classification task."""

    name: str
    num_classes: int
    num_samples: int
    latent_dim: int
    feature_shape: tuple[int, ...]  # (D,) flat or (C, H, W) image
    separation: float = 3.0
    sigma_within: float = 1.0
    sigma_noise: float = 0.5
    squash: bool = False
    balanced: bool = True

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.num_samples < self.num_classes:
            raise ValueError("need at least one sample per class")
        if self.latent_dim <= 0:
            raise ValueError("latent_dim must be positive")
        if len(self.feature_shape) not in (1, 3):
            raise ValueError("feature_shape must be (D,) or (C, H, W)")


def _sample_labels(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Balanced (round-robin) or uniform-random labels."""
    if spec.balanced:
        y = np.arange(spec.num_samples) % spec.num_classes
        return rng.permutation(y)
    return rng.integers(0, spec.num_classes, size=spec.num_samples)


def make_synthetic(
    spec: SyntheticSpec, seed: int | np.random.Generator | None = 0
) -> ClassificationDataset:
    """Generate the dataset described by ``spec`` deterministically from ``seed``."""
    rng = as_generator(seed)
    d_feat = int(np.prod(spec.feature_shape))

    # Class prototypes on a sphere in latent space.
    protos = rng.normal(size=(spec.num_classes, spec.latent_dim))
    protos /= np.linalg.norm(protos, axis=1, keepdims=True)
    protos *= spec.separation

    # Fixed random projection latent -> feature, column-normalized so the
    # signal scale is independent of latent_dim.
    proj = rng.normal(size=(spec.latent_dim, d_feat)) / np.sqrt(spec.latent_dim)

    y = _sample_labels(spec, rng)
    latent = protos[y] + spec.sigma_within * rng.normal(
        size=(spec.num_samples, spec.latent_dim)
    )
    x = latent @ proj
    x += spec.sigma_noise * rng.normal(size=x.shape)
    if spec.squash:
        np.tanh(x, out=x)
    x = x.reshape((spec.num_samples, *spec.feature_shape))
    return ClassificationDataset(x, y, spec.num_classes, name=spec.name)


def mnist_like(
    num_samples: int = 4000,
    seed: int | np.random.Generator | None = 0,
    feature_dim: int = 64,
) -> ClassificationDataset:
    """10 well-separated classes, flat features — easiest task (MNIST role)."""
    spec = SyntheticSpec(
        name="mnist_like",
        num_classes=10,
        num_samples=num_samples,
        latent_dim=16,
        feature_shape=(feature_dim,),
        separation=4.0,
        sigma_within=0.9,
        sigma_noise=0.4,
    )
    return make_synthetic(spec, seed)


def emnist_like(
    num_samples: int = 5000,
    seed: int | np.random.Generator | None = 0,
    feature_dim: int = 64,
) -> ClassificationDataset:
    """26 classes, flat features, more class crowding (EMNIST-Letters role)."""
    spec = SyntheticSpec(
        name="emnist_like",
        num_classes=26,
        num_samples=num_samples,
        latent_dim=24,
        feature_shape=(feature_dim,),
        separation=4.2,
        sigma_within=1.0,
        sigma_noise=0.5,
    )
    return make_synthetic(spec, seed)


def cifar10_like(
    num_samples: int = 4000,
    seed: int | np.random.Generator | None = 0,
    image_size: int = 8,
    channels: int = 3,
) -> ClassificationDataset:
    """10 classes, image tensor, squashed — hard task (CIFAR10 role)."""
    spec = SyntheticSpec(
        name="cifar10_like",
        num_classes=10,
        num_samples=num_samples,
        latent_dim=20,
        feature_shape=(channels, image_size, image_size),
        separation=3.0,
        sigma_within=1.0,
        sigma_noise=0.7,
        squash=True,
    )
    return make_synthetic(spec, seed)


def cifar100_like(
    num_samples: int = 5000,
    seed: int | np.random.Generator | None = 0,
    image_size: int = 8,
    channels: int = 3,
) -> ClassificationDataset:
    """100 classes, image tensor, squashed — hardest task (CIFAR100 role)."""
    spec = SyntheticSpec(
        name="cifar100_like",
        num_classes=100,
        num_samples=num_samples,
        latent_dim=48,
        feature_shape=(channels, image_size, image_size),
        separation=3.5,
        sigma_within=1.0,
        sigma_noise=0.6,
        squash=True,
    )
    return make_synthetic(spec, seed)
