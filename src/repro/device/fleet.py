"""Struct-of-arrays device population: O(active) memory, vectorized rounds.

A :class:`DeviceFleet` owns an entire device population as contiguous
arrays — ``unit_times``, ``num_samples``, shard index bounds over one
gathered feature/label block — instead of a list of per-device Python
objects.  Per-device *state* (the weight vector a device would upload) is
materialized lazily: an idle device costs O(1) memory, an active one costs
one row of a shared ``(participants, dim)`` weights matrix, mirroring the
flat ``Sequential.theta`` buffer one layer down.

Two storage modes, chosen by the server from the environment:

* **recycled** (``retain_history=False``, lossless channels): every round
  re-registers participant rows inside one reused arena, so peak fleet
  state is ``O(dim x max participants)`` no matter how large the
  population is.  Safe because with ``drop_prob == 0`` nothing ever reads
  a device's weights across a round boundary (every method restarts
  participants from the global model).
* **retained** (``retain_history=True``, lossy channels): a device keeps
  its last trained row until it trains again — the server's
  ``start_views`` drop-fallback may need it next round.  Memory grows
  with the set of ever-active devices, which is inherent: state someone
  may still read cannot be recycled.

The existing :class:`~repro.device.device.Device` contract survives as
:class:`FleetDevice`, a thin row-view facade (built lazily, cached), so
the ring engine's ``run_unit`` choreography and all method code keep
their shape.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.device.device import Device, LocalTrainer

__all__ = ["DeviceFleet", "FleetDevice", "FleetState", "make_fleet"]


class FleetState:
    """Lazily materialized per-device state rows keyed by stable device id.

    Methods with cross-round per-device state (SCAFFOLD control variates,
    FedAT tier models) store it here instead of in eagerly allocated
    dicts: a device that never participates costs nothing, and a device
    that is deselected and later reselected finds its row untouched —
    state is keyed by device id, never by a per-round position.

    Reads of an unmaterialized row return one shared read-only zeros
    vector (the natural initial value for every current use), so the
    read path allocates nothing.
    """

    def __init__(self, num_devices: int, dim: int) -> None:
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.num_devices = int(num_devices)
        self.dim = int(dim)
        self._zeros = np.zeros(dim)
        self._zeros.flags.writeable = False
        self._pool = np.empty((0, dim))
        self._row_of: dict[int, int] = {}

    # Read-only mapping interface: conceptually *every* device has state
    # (default zero), so iteration spans the population while storage
    # stays O(materialized).  Consumers that held ``dict[int, ndarray]``
    # state keep working unchanged.

    def __len__(self) -> int:
        return self.num_devices

    def __getitem__(self, device_id: int) -> np.ndarray:
        return self.row(device_id)

    def keys(self):
        return range(self.num_devices)

    def values(self):
        return (self.row(i) for i in range(self.num_devices))

    def items(self):
        return ((i, self.row(i)) for i in range(self.num_devices))

    def is_materialized(self, device_id: int) -> bool:
        return device_id in self._row_of

    @property
    def materialized(self) -> int:
        """Number of devices whose row has been written."""
        return len(self._row_of)

    @property
    def nbytes(self) -> int:
        """Bytes held by materialized rows (pool capacity, not count)."""
        return self._pool.nbytes

    def row(self, device_id: int) -> np.ndarray:
        """This device's state row — the shared zeros if never written."""
        idx = self._row_of.get(device_id)
        if idx is None:
            return self._zeros
        return self._pool[idx]

    def materialize(self, device_id: int) -> np.ndarray:
        """A writable row for ``device_id`` (zero-filled on first use)."""
        idx = self._row_of.get(device_id)
        if idx is None:
            idx = len(self._row_of)
            if idx >= self._pool.shape[0]:
                grown = np.empty((max(4, 2 * self._pool.shape[0]), self.dim))
                grown[: self._pool.shape[0]] = self._pool
                self._pool = grown
            self._pool[idx] = 0.0
            self._row_of[device_id] = idx
        return self._pool[idx]

    def set(self, device_id: int, values: np.ndarray) -> None:
        """Copy ``values`` into the device's (materialized) row."""
        np.copyto(self.materialize(device_id), values)


class DeviceFleet:
    """The device population as contiguous struct-of-arrays storage.

    Parameters
    ----------
    dataset:
        The training split; its samples are gathered **once** into fleet
        order so every device shard is a zero-copy slice
        ``x[start_i:stop_i]`` instead of a per-device fancy-index copy.
    parts:
        One index array per device (a partition of ``dataset``).
    unit_times:
        Per-device virtual time per local-training unit.
    trainer:
        The shared :class:`~repro.device.device.LocalTrainer`.
    """

    def __init__(
        self,
        dataset: ClassificationDataset,
        parts: list[np.ndarray],
        unit_times: np.ndarray,
        trainer: LocalTrainer,
        name: str | None = None,
    ) -> None:
        if len(parts) != len(unit_times):
            raise ValueError(
                f"parts ({len(parts)}) and unit_times ({len(unit_times)}) disagree"
            )
        if not len(parts):
            raise ValueError("need at least one device")
        n = len(parts)
        lengths = np.array([len(p) for p in parts], dtype=np.intp)
        empty = np.flatnonzero(lengths == 0)
        if empty.size:
            raise ValueError(f"device {int(empty[0])} has an empty shard")
        unit_times = np.ascontiguousarray(unit_times, dtype=np.float64)
        if np.any(unit_times <= 0):
            bad = int(np.flatnonzero(unit_times <= 0)[0])
            raise ValueError(
                f"unit_time must be positive, got {unit_times[bad]}"
            )

        # One gather into fleet order; per-device shards are slices of it.
        # A partition that is already in fleet order (the ``contiguous``
        # scheme million-device profiles use) skips the gather entirely:
        # the fleet aliases the dataset's block, so building the fleet
        # costs O(devices) index arrays, never a second copy of the data.
        order = np.concatenate([np.asarray(p, dtype=np.intp) for p in parts])
        if order.size == len(dataset) and np.array_equal(
            order, np.arange(order.size, dtype=np.intp)
        ):
            self.x = dataset.x
            self.y = dataset.y
        else:
            self.x = dataset.x[order]
            self.y = dataset.y[order]
        self.num_classes = dataset.num_classes
        self.name = name if name is not None else dataset.name

        self.num_devices = n
        self.device_ids = np.arange(n, dtype=np.intp)
        self.unit_times = unit_times
        self.num_samples = lengths
        self.shard_stops = np.cumsum(lengths)
        self.shard_starts = self.shard_stops - lengths

        self.trainer = trainer
        self.dim = trainer.dim

        #: Lossy channels may read a device's last weights next round
        #: (``start_views`` fallback); the server clears this flag for
        #: lossless environments to enable arena recycling.
        self.retain_history = True

        # Lazily materialized per-device weight rows.  ``_views[i]`` is the
        # standalone (dim,) row a device owns, or None (idle: O(1) cost).
        # Devices registered in the current round arena are tracked in
        # ``_arena_row`` (id -> arena row) instead; their views are built
        # on demand so registering a round costs one dict, not p view
        # objects.  Arena registration wins over a stale standalone row.
        self._views: list[np.ndarray | None] = [None] * n
        self._has_standalone = False
        self._arena: np.ndarray | None = None  # recycled round matrix
        self._arena_row: dict[int, int] = {}
        self._arena_reg_ids: np.ndarray | None = None
        self._facades: list[FleetDevice | None] = [None] * n
        self._shards: list[ClassificationDataset | None] = [None] * n

    # ------------------------------------------------------ population API

    def __len__(self) -> int:
        return self.num_devices

    def __getitem__(self, device_id: int) -> "FleetDevice":
        return self.device(device_id)

    def __iter__(self):
        # Materializes every facade — fine for small fleets and tests;
        # fleet-scale callers should work with id arrays instead.
        return (self.device(i) for i in range(self.num_devices))

    def device(self, device_id: int) -> "FleetDevice":
        """The (cached) row-view facade for one device."""
        device_id = int(device_id)
        facade = self._facades[device_id]
        if facade is None:
            facade = FleetDevice(self, device_id)
            self._facades[device_id] = facade
        return facade

    def shard(self, device_id: int) -> ClassificationDataset:
        """Device shard as a zero-copy slice of the fleet block (cached)."""
        shard = self._shards[device_id]
        if shard is None:
            start = self.shard_starts[device_id]
            stop = self.shard_stops[device_id]
            shard = ClassificationDataset(
                self.x[start:stop],
                self.y[start:stop],
                self.num_classes,
                name=f"{self.name}/dev{device_id}",
            )
            self._shards[device_id] = shard
        return shard

    # --------------------------------------------------------- weight rows

    def weights_row(self, device_id: int) -> np.ndarray | None:
        """Zero-copy view of the device's current weights (None if idle)."""
        row = self._arena_row.get(device_id)
        if row is not None:
            return self._arena[row]
        return self._views[device_id]

    def set_weights(self, device_id: int, values: np.ndarray) -> None:
        """Copy ``values`` into the device's row, materializing it if idle.

        Writing the row the device already owns (e.g. training with
        ``out=`` straight into its round-matrix row) is a no-op.
        """
        row = self._arena_row.get(device_id)
        if row is not None:
            view = self._arena[row]
        else:
            view = self._views[device_id]
            if view is None:
                view = np.empty(self.dim)
                self._views[device_id] = view
                self._has_standalone = True
        if values is view or (
            isinstance(values, np.ndarray)
            and values.ndim == 1
            and values.ctypes.data == view.ctypes.data
        ):
            return
        np.copyto(view, values)

    def clear_weights(self, device_id: int) -> None:
        self._arena_row.pop(device_id, None)
        self._views[device_id] = None

    def round_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Contiguous ``(len(ids), dim)`` matrix whose rows become the
        given devices' weight rows for this round.

        The matrix is one reused arena (grown only when the participant
        count does) and every previous registration is invalidated first,
        so peak fleet state stays O(dim x participants) regardless of
        population size.  Only valid with ``retain_history`` off: the
        rows are registered *before* they are written, which is safe
        exactly when no cross-round reader exists (lossless channels —
        see the class docstring).  Lossy environments must instead write
        through :meth:`set_weights`, which snapshots values into retained
        per-device rows.
        """
        if self.retain_history:
            raise RuntimeError(
                "round_matrix requires retain_history=False; a lossy "
                "environment may still read last-round weights, so rows "
                "cannot be recycled"
            )
        ids = np.asarray(ids, dtype=np.intp)
        p = len(ids)
        if self._arena is None or self._arena.shape[0] < p:
            self._arena = np.empty((p, self.dim))
        block = self._arena[:p]
        id_list = ids.tolist()
        # One dict replaces p registered view objects; previous arena
        # registrations vanish with the old dict (recycled rows hold no
        # readable state across rounds by construction).
        self._arena_row = dict(zip(id_list, range(p)))
        self._arena_reg_ids = ids
        if self._has_standalone:
            # A standalone row must not shadow the new arena registration
            # once the arena moves on — recycled history is gone either way.
            for i in id_list:
                self._views[i] = None
        return block

    def stack_weights(self, ids: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Stacked weights of the given devices (aggregation input).

        When ``ids`` is exactly the registered round (same order), the
        arena block *is* that stack, so the read-only aggregation
        consumers get it back without a (p, dim) copy.  Any other id
        set gathers into a fresh (or provided) matrix.
        """
        ids = np.asarray(ids, dtype=np.intp)
        if (
            out is None
            and self._arena_reg_ids is not None
            and len(ids) == len(self._arena_reg_ids)
            and np.array_equal(ids, self._arena_reg_ids)
        ):
            return self._arena[: len(ids)]
        if out is None:
            out = np.empty((len(ids), self.dim))
        for row, i in enumerate(ids.tolist()):
            view = self.weights_row(i)
            if view is None:
                raise ValueError(f"device {i} has no weights to stack")
            np.copyto(out[row], view)
        return out

    # ------------------------------------------------------------- metrics

    @property
    def materialized_rows(self) -> int:
        """Devices currently holding a weight row."""
        standalone = sum(
            1 for i, v in enumerate(self._views)
            if v is not None and i not in self._arena_row
        )
        return standalone + len(self._arena_row)

    @property
    def state_nbytes(self) -> int:
        """Bytes of weight state held by the fleet (arena + retained rows).

        Counts each backing allocation once — many views share one round
        block — which is what "peak fleet state memory" means in the perf
        suite.
        """
        seen: set[int] = set()
        total = 0
        if self._arena is not None:
            seen.add(id(self._arena))
            total += self._arena.nbytes
        for view in self._views:
            if view is None:
                continue
            base = view.base if view.base is not None else view
            if id(base) not in seen:
                seen.add(id(base))
                total += base.nbytes
        return total


class FleetDevice(Device):
    """Row-view facade over one :class:`DeviceFleet` slot.

    Keeps the full :class:`~repro.device.device.Device` surface —
    ``run_unit``/``train_unit``/``reset_buffer``/``receive`` and the
    ``weights`` attribute — but owns no arrays: ``weights`` reads are
    zero-copy views into the fleet's weights matrix, writes are copies
    into the device's fleet row (so, unlike a standalone device, a fleet
    device never aliases a caller's array — assigning ``weights``
    snapshots the value).  The shard is a zero-copy slice of the fleet's
    gathered data block, built on first access.
    """

    def __init__(self, fleet: DeviceFleet, device_id: int) -> None:
        # Deliberately skips Device.__init__: the shard is lazy and the
        # fleet constructor already validated unit times and shard sizes.
        self.fleet = fleet
        self.device_id = device_id
        self.trainer = fleet.trainer
        self.unit_time = float(fleet.unit_times[device_id])
        self.buffer: list[np.ndarray] = []
        self._shard: ClassificationDataset | None = None

    @property
    def shard(self) -> ClassificationDataset:
        if self._shard is None:
            self._shard = self.fleet.shard(self.device_id)
        return self._shard

    @property
    def num_samples(self) -> int:
        return int(self.fleet.num_samples[self.device_id])

    @property
    def weights(self) -> np.ndarray | None:
        return self.fleet.weights_row(self.device_id)

    @weights.setter
    def weights(self, value: np.ndarray | None) -> None:
        if value is None:
            self.fleet.clear_weights(self.device_id)
        else:
            self.fleet.set_weights(self.device_id, value)


def make_fleet(
    dataset: ClassificationDataset,
    parts: list[np.ndarray],
    unit_times: np.ndarray,
    trainer: LocalTrainer,
    name: str | None = None,
) -> DeviceFleet:
    """Assemble the struct-of-arrays fleet (the :func:`make_devices`
    replacement used by :func:`repro.experiments.build_experiment`)."""
    return DeviceFleet(dataset, parts, unit_times, trainer, name=name)
