"""Federated device: data shard + compute profile + local SGD.

Memory note: every device stores only its flat weight vector.  A single
shared model instance per architecture executes all devices' training (the
simulation is single-threaded), so parameters are swapped in and out via
the flat-vector serialization — 100 devices cost 100 vectors, not 100
models (guide: be easy on the memory).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.nn.models import Sequential
from repro.nn.serialization import num_params
from repro.utils.rng import SeedSequenceFactory

__all__ = ["LocalTrainer", "Device", "make_devices"]


class LocalTrainer:
    """Runs epochs of mini-batch SGD on a shard, weights-in/weights-out.

    One trainer (and its model template) is shared across all devices of a
    simulation.  ``train`` optionally applies

    * a FedProx proximal pull toward ``anchor`` with strength ``mu``, and/or
    * a SCAFFOLD-style additive gradient ``correction`` (flat vector),

    which is how every algorithm in :mod:`repro.baselines` reuses this one
    code path.
    """

    def __init__(
        self,
        model: Sequential,
        lr: float = 0.1,
        batch_size: int = 50,
        seed: int | None = 0,
        momentum: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.model = model
        self.lr = lr
        self.batch_size = batch_size
        # Heavy-ball momentum, reset at every train() call: a training unit
        # is a fresh optimization leg on freshly received weights, so no
        # velocity carries across units (the paper notes momentum [9] can
        # be combined with FL methods).
        self.momentum = momentum
        self._seeds = SeedSequenceFactory(seed)
        self.dim = num_params(model)
        # Reusable d-vectors for the fused update math (one set per trainer;
        # the simulation is single-threaded so one scratch buffer serves
        # every device that shares this trainer).  The momentum velocity is
        # preallocated once and zero-filled per train() call instead of
        # reallocated, matching the ``_scratch`` pattern.
        self._scratch = np.empty(self.dim, dtype=np.float64)
        self._velocity = (
            np.empty(self.dim, dtype=np.float64) if self.momentum > 0 else None
        )
        # Reusable per-epoch gather destinations, grown to the largest shard
        # seen so the per-epoch shuffle is one ``np.take(..., out=...)``
        # instead of a fresh fancy-index allocation per epoch per device.
        self._x_epoch: np.ndarray | None = None
        self._y_epoch: np.ndarray | None = None

    def _epoch_buffers(
        self, x: np.ndarray, y: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Length-``n`` views of the reusable epoch gather buffers."""
        xb = self._x_epoch
        if xb is None or xb.shape[0] < n or xb.shape[1:] != x.shape[1:] or xb.dtype != x.dtype:
            cap = n if xb is None else max(n, xb.shape[0])
            self._x_epoch = xb = np.empty((cap,) + x.shape[1:], dtype=x.dtype)
        yb = self._y_epoch
        if yb is None or yb.shape[0] < n or yb.shape[1:] != y.shape[1:] or yb.dtype != y.dtype:
            cap = n if yb is None else max(n, yb.shape[0])
            self._y_epoch = yb = np.empty((cap,) + y.shape[1:], dtype=y.dtype)
        return xb[:n], yb[:n]

    def train(
        self,
        weights: np.ndarray,
        shard: ClassificationDataset,
        epochs: int,
        stream_key: tuple[int, ...] = (0,),
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
        correction: np.ndarray | None = None,
        lr: float | None = None,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, int]:
        """Train ``epochs`` passes starting from ``weights``.

        Returns ``(new_weights, num_sgd_steps)``.  ``stream_key`` selects
        the batch-shuffling stream so results are reproducible regardless
        of device scheduling order.  ``out``, when given, receives the
        trained vector in place (and is returned) so callers that own a
        destination row — the fleet round matrix — skip the fresh
        allocation.

        The per-batch update runs as whole-vector ops on the model's flat
        ``theta`` / ``grad`` buffers: SGD step, heavy-ball momentum, the
        FedProx proximal pull, and the SCAFFOLD correction are each one
        BLAS-level operation over R^d rather than a Python loop over
        layers.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        if len(shard) == 0:
            raise ValueError("cannot train on an empty shard")
        eta = self.lr if lr is None else lr
        model = self.model
        model.set_flat(weights)
        theta = model.theta
        grad = model.grad
        scratch = self._scratch
        rng = self._seeds.generator(*stream_key)
        # A training unit is a fresh optimization leg, so the (reused)
        # velocity buffer starts from rest every call.
        velocity = self._velocity
        if velocity is not None:
            velocity.fill(0.0)
        prox = anchor is not None and mu > 0.0
        steps = 0
        n = len(shard)
        x_epoch, y_epoch = self._epoch_buffers(shard.x, shard.y, n)
        for _ in range(epochs):
            order = rng.permutation(n)
            # One shard-sized gather per epoch into the reused buffers;
            # batches are then contiguous views instead of per-batch
            # fancy-index copies.
            np.take(shard.x, order, axis=0, out=x_epoch)
            np.take(shard.y, order, axis=0, out=y_epoch)
            for start in range(0, n, self.batch_size):
                stop = start + self.batch_size
                # loss_and_grad leaves grad holding exactly this batch's
                # gradient (overwriting backward) — no zero fill needed.
                model.loss_and_grad(x_epoch[start:stop], y_epoch[start:stop])
                if correction is not None:
                    grad += correction
                if prox:
                    np.subtract(theta, anchor, out=scratch)
                    scratch *= mu
                    grad += scratch
                if velocity is None:
                    np.multiply(grad, eta, out=scratch)
                else:
                    velocity *= self.momentum
                    velocity += grad
                    np.multiply(velocity, eta, out=scratch)
                theta -= scratch
                steps += 1
        if out is None:
            return theta.copy(), steps
        np.copyto(out, theta)
        return out, steps

    def gradient(
        self,
        weights: np.ndarray,
        shard: ClassificationDataset,
        batch_indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Full-batch (or given-batch) loss gradient at ``weights``, flat."""
        model = self.model
        model.set_flat(weights)
        if batch_indices is None:
            model.loss_and_grad(shard.x, shard.y)
        else:
            model.loss_and_grad(shard.x[batch_indices], shard.y[batch_indices])
        return model.grad.copy()


class Device:
    """One federated participant.

    ``buffer`` realizes Algorithm 1's per-device stack B_i: the *back*
    (last element) is the model the device trains next; ring predecessors
    push onto it via :meth:`receive`.

    **Weight-ownership rule.**  Arrays handed to :meth:`reset_buffer` and
    :meth:`receive` are *borrowed, read-only*: the device aliases them
    (no copy) and never mutates a buffered array in place — training
    copies the start model into the shared trainer first.  The flip side
    of the zero-copy alias is that the caller must not mutate an array
    after handing it over; the server upholds this by always *replacing*
    ``global_weights`` with a freshly produced vector rather than updating
    it in place.  Vectors a device produces (:meth:`run_unit`) are owned
    by the device (a fresh array, or its fleet row for
    :class:`~repro.device.fleet.FleetDevice`) and stay valid until its
    next training unit overwrites them.
    """

    def __init__(
        self,
        device_id: int,
        shard: ClassificationDataset,
        unit_time: float,
        trainer: LocalTrainer,
        weights: np.ndarray | None = None,
        buffer: list[np.ndarray] | None = None,
    ) -> None:
        if unit_time <= 0:
            raise ValueError(f"unit_time must be positive, got {unit_time}")
        if len(shard) == 0:
            raise ValueError(f"device {device_id} has an empty shard")
        self.device_id = device_id
        self.shard = shard
        self.unit_time = unit_time
        self.trainer = trainer
        self.buffer: list[np.ndarray] = [] if buffer is None else buffer
        self._weights = weights

    @property
    def weights(self) -> np.ndarray | None:
        """The device's current model (None until it first trains/resets).

        A plain attribute here; :class:`~repro.device.fleet.FleetDevice`
        overrides the pair so reads are zero-copy views into the fleet's
        weights matrix and writes land in the device's fleet row.
        """
        return self._weights

    @weights.setter
    def weights(self, value: np.ndarray | None) -> None:
        self._weights = value

    @property
    def num_samples(self) -> int:
        return len(self.shard)

    def reset_buffer(self, weights: np.ndarray) -> None:
        """Algorithm 1 lines 8-9: clear B_i and push the round-start model.

        ``weights`` is borrowed (aliased, never mutated) — see the class
        docstring's ownership rule.
        """
        self.buffer.clear()
        self.buffer.append(weights)
        self.weights = weights

    def receive(self, weights: np.ndarray) -> None:
        """Ring predecessor (or server) hands over a model (borrowed —
        the sender must not mutate it afterwards)."""
        self.buffer.append(weights)

    def run_unit(
        self,
        start_weights: np.ndarray,
        epochs: int,
        round_idx: int,
        unit_idx: int,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
        correction: np.ndarray | None = None,
        lr: float | None = None,
        out: np.ndarray | None = None,
        sync: bool = True,
    ) -> np.ndarray:
        """One local-training unit from explicit start weights.

        Pure compute: buffer choreography (what to train next, what arrived
        mid-unit) is owned by the simulation engine.  Sets ``self.weights``
        to the result and returns it.  ``out`` (a caller-owned row, e.g.
        the fleet round matrix) receives the result without a fresh
        allocation.  ``sync=False`` skips the ``self.weights`` assignment —
        for callers that trained straight into the device's *registered*
        fleet row (``FederatedServer.rows_live``), where the assignment
        would be a redundant self-copy check per device.
        """
        new_weights, _ = self.trainer.train(
            start_weights,
            self.shard,
            epochs,
            stream_key=(self.device_id, round_idx, unit_idx),
            anchor=anchor,
            mu=mu,
            correction=correction,
            lr=lr,
            out=out,
        )
        if sync:
            self.weights = new_weights
        return new_weights

    def train_unit(
        self,
        epochs: int,
        round_idx: int,
        unit_idx: int,
        **kwargs,
    ) -> np.ndarray:
        """Convenience for sequential (non-event-driven) experiments:
        train the newest buffered model; the result supersedes the buffer
        (Algorithm 1's Update-in-place of ``B_i.back()``)."""
        if not self.buffer:
            raise RuntimeError(f"device {self.device_id} has an empty buffer")
        new_weights = self.run_unit(
            self.buffer[-1], epochs, round_idx, unit_idx, **kwargs
        )
        self.buffer.clear()
        self.buffer.append(new_weights)
        return new_weights


def make_devices(
    dataset: ClassificationDataset,
    parts: list[np.ndarray],
    unit_times: np.ndarray,
    trainer: LocalTrainer,
) -> list[Device]:
    """Assemble one :class:`Device` per partition entry."""
    if len(parts) != len(unit_times):
        raise ValueError(
            f"parts ({len(parts)}) and unit_times ({len(unit_times)}) disagree"
        )
    return [
        Device(
            device_id=i,
            shard=dataset.subset(idx, name=f"{dataset.name}/dev{i}"),
            unit_time=float(unit_times[i]),
            trainer=trainer,
        )
        for i, idx in enumerate(parts)
    ]
