"""Device-to-device link-delay models.

The paper defines the ring metric ``M_i = t_i + D_{i,i+1}`` (Eq. 5) and then
simplifies to equal link delays, reducing it to ``M_i = t_i``.  Both forms
are supported: :class:`UniformDelay` is the simplified model; a full delay
matrix generalizes it for the ablation benches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinkDelayModel", "UniformDelay", "MatrixDelay"]


class LinkDelayModel:
    """Interface: virtual-time delay for a model hop between two devices."""

    def delay(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        """Delays from ``src`` to each destination in ``dsts``, vectorized.

        The base implementation loops over :meth:`delay`; subclasses
        override it with a true vector read so hot callers (ring
        construction under Eq. 5) stay out of per-element Python.
        """
        return np.array([self.delay(src, int(d)) for d in dsts], dtype=np.float64)


class UniformDelay(LinkDelayModel):
    """Equal delay on every link (the paper's simplification; default 0)."""

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._delay = delay

    def delay(self, src: int, dst: int) -> float:
        return self._delay

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        return np.full(len(dsts), self._delay)


class MatrixDelay(LinkDelayModel):
    """Arbitrary pairwise delays from a dense matrix ``D[src, dst]``."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"delay matrix must be square, got {matrix.shape}")
        if np.any(matrix < 0):
            raise ValueError("delays must be non-negative")
        self.matrix = matrix

    def delay(self, src: int, dst: int) -> float:
        return float(self.matrix[src, dst])

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        return self.matrix[src, np.asarray(dsts, dtype=np.intp)]
