"""Resource-heterogeneity models.

Compute capacity is parameterized by the *unit time* ``t_i``: the virtual
time device ``i`` needs for one local-training unit.  With the round length
fixed to the slowest device's unit time (the paper's convention), a device
completes ``floor(R / t_i)`` units per round.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "sample_unit_counts",
    "unit_times_from_counts",
    "unit_times_from_ratio",
    "heterogeneity_ratio",
]


def sample_unit_counts(
    num_devices: int,
    low: int = 1,
    high: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Units-per-round for each device, uniform integers in ``[low, high]``.

    The paper's "[5, 50] epochs per round" with 5 epochs per unit is
    ``low=1, high=10``.  Guarantees both extremes appear when
    ``num_devices >= 2`` so the realized heterogeneity ratio equals
    ``high/low`` exactly (the paper's H definition, Eq. 13).
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if not 1 <= low <= high:
        raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = as_generator(seed)
    counts = rng.integers(low, high + 1, size=num_devices)
    if num_devices >= 2 and low < high:
        # Pin the extremes on two distinct random devices.
        i, j = rng.choice(num_devices, size=2, replace=False)
        counts[i] = low
        counts[j] = high
    return counts


def unit_times_from_counts(counts: np.ndarray, round_length: float = 1.0) -> np.ndarray:
    """Convert units-per-round into unit times: ``t_i = R / counts_i``."""
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 1):
        raise ValueError("every device must complete at least one unit per round")
    if round_length <= 0:
        raise ValueError("round_length must be positive")
    return round_length / counts


def unit_times_from_ratio(
    num_devices: int,
    ratio: float,
    seed: int | np.random.Generator | None = 0,
    round_length: float = 1.0,
) -> np.ndarray:
    """Unit times with heterogeneity ratio exactly ``H = ratio`` (Eq. 13).

    Speeds (1/t) are uniform in ``[1, ratio]`` with the extremes pinned, so
    ``t_max / t_min == ratio``.  ``ratio=1`` gives homogeneous devices.
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if ratio < 1.0:
        raise ValueError(f"heterogeneity ratio must be >= 1, got {ratio}")
    rng = as_generator(seed)
    speeds = rng.uniform(1.0, ratio, size=num_devices)
    if num_devices >= 2 and ratio > 1.0:
        i, j = rng.choice(num_devices, size=2, replace=False)
        speeds[i] = 1.0
        speeds[j] = ratio
    elif ratio == 1.0:
        speeds[:] = 1.0
    return round_length / speeds


def heterogeneity_ratio(unit_times: np.ndarray) -> float:
    """The paper's H = l_max / l_min (Eq. 13)."""
    unit_times = np.asarray(unit_times, dtype=np.float64)
    if unit_times.size == 0:
        raise ValueError("unit_times is empty")
    if np.any(unit_times <= 0):
        raise ValueError("unit times must be positive")
    return float(unit_times.max() / unit_times.min())
