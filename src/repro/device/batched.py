"""Whole-round local SGD as matrix math over the participant axis.

:class:`BatchedTrainer` is the round-level counterpart of
:class:`~repro.device.device.LocalTrainer`: instead of training the round's
receivers one at a time through a shared :class:`~repro.nn.models.Sequential`,
it groups them into **cohorts** with identical ``(shard size, epochs)`` —
members of a cohort share batch boundaries and step counts — and trains each
cohort as stacked GEMMs over a ``(P, dim)`` theta arena via
:class:`~repro.nn.batched.BatchedSequential`.  The optimizer math (SGD step,
heavy-ball momentum, FedProx pull, SCAFFOLD correction) runs as whole-matrix
ops over the arena, mirroring ``LocalTrainer.train``'s fused scalar path
line for line.

Determinism contract: every device draws its epoch permutations from its own
``(device_id, round_idx, 0)`` stream — exactly the generator the sequential
path uses — so batched and sequential training see identical shuffles.  The
per-replica float ops are the same as the sequential path's, so results are
bit-identical wherever the BLAS build computes stacked-GEMM slices exactly
like their 2-D equivalents (and within ~1e-12 otherwise; DESIGN.md §15).
"""

from __future__ import annotations

import numpy as np

from repro.device.device import LocalTrainer
from repro.device.fleet import DeviceFleet
from repro.nn.batched import BatchedSequential

__all__ = ["BatchedTrainer"]


class BatchedTrainer:
    """Trains a round's receivers in cohorts of stacked model replicas."""

    def __init__(self, trainer: LocalTrainer, fleet: DeviceFleet) -> None:
        self.trainer = trainer
        self.fleet = fleet
        self.model = BatchedSequential(trainer.model)
        self.dim = trainer.dim
        x2d = fleet.x.reshape(fleet.x.shape[0], -1)
        if x2d.shape[1] != self.model.in_features:
            raise ValueError(
                f"fleet features ({x2d.shape[1]}) do not match the model's "
                f"input width ({self.model.in_features})"
            )
        self._x2d = x2d
        self._feat = x2d.shape[1]
        # The sequential loss validates targets per batch; the data block is
        # immutable after the fleet is built, so validate it once here.
        y = fleet.y
        if y.size and (int(y.min()) < 0 or int(y.max()) >= self.model.num_classes):
            raise ValueError(
                f"targets must be in [0, {self.model.num_classes}), "
                f"got range [{int(y.min())}, {int(y.max())}]"
            )
        self._y = y
        # Grown (capacity, dim) arenas reused across cohorts and rounds.
        self._theta: np.ndarray | None = None
        self._grad: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._velocity: np.ndarray | None = None
        # Grown flat epoch-gather buffers (indices, features, targets).
        self._idx: np.ndarray | None = None
        self._xe: np.ndarray | None = None
        self._ye: np.ndarray | None = None

    @staticmethod
    def supports(model) -> bool:
        """True when ``model`` can run on the batched engine."""
        return BatchedSequential.supports(model)

    def _arenas(self, P: int):
        if self._theta is None or self._theta.shape[0] < P:
            self._theta = np.empty((P, self.dim))
            self._grad = np.empty((P, self.dim))
            self._scratch = np.empty((P, self.dim))
            if self.trainer.momentum > 0.0:
                self._velocity = np.empty((P, self.dim))
        vel = None if self._velocity is None else self._velocity[:P]
        return self._theta[:P], self._grad[:P], self._scratch[:P], vel

    def _epoch_views(self, P: int, n: int):
        need = P * n
        if self._idx is None or self._idx.size < need:
            self._idx = np.empty(need, dtype=np.intp)
            self._xe = np.empty(need * self._feat, dtype=self._x2d.dtype)
            self._ye = np.empty(need, dtype=self._y.dtype)
        return (
            self._idx[:need].reshape(P, n),
            self._xe[: need * self._feat].reshape(P, n, self._feat),
            self._ye[:need].reshape(P, n),
        )

    def train_round(
        self,
        ids: np.ndarray,
        epochs: np.ndarray,
        round_idx: int,
        weights: np.ndarray,
        out: np.ndarray,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
        corrections: np.ndarray | None = None,
        lr: float | None = None,
    ) -> np.ndarray:
        """Train every receiver of a round; rows of ``out`` receive results.

        ``ids`` are fleet device ids, ``epochs`` the per-device epoch counts
        (both aligned with the rows of ``out``), ``weights`` the broadcast
        round-start vector.  ``corrections``, when given, is a
        ``(len(ids), dim)`` matrix of per-device additive gradient
        corrections (SCAFFOLD).  Returns the per-device SGD step counts.
        """
        ids = np.asarray(ids, dtype=np.intp)
        ep = np.asarray(epochs)
        n_arr = self.fleet.num_samples[ids]
        steps_out = np.empty(len(ids), dtype=np.intp)
        cohorts: dict[tuple[int, int], list[int]] = {}
        for pos in range(len(ids)):
            cohorts.setdefault((int(n_arr[pos]), int(ep[pos])), []).append(pos)
        for (n, e), positions in cohorts.items():
            if e <= 0:
                raise ValueError(f"epochs must be positive, got {e}")
            if n <= 0:
                raise ValueError("cannot train on an empty shard")
            steps = self._train_cohort(
                ids, positions, n, e, round_idx, weights, out,
                anchor=anchor, mu=mu, corrections=corrections, lr=lr,
            )
            steps_out[positions] = steps
        return steps_out

    def _train_cohort(
        self,
        ids: np.ndarray,
        positions: list[int],
        n: int,
        e: int,
        round_idx: int,
        weights: np.ndarray,
        out: np.ndarray,
        anchor: np.ndarray | None,
        mu: float,
        corrections: np.ndarray | None,
        lr: float | None,
    ) -> int:
        trainer = self.trainer
        eta = trainer.lr if lr is None else lr
        batch = trainer.batch_size
        prox = anchor is not None and mu > 0.0
        P = len(positions)
        pos_arr = np.asarray(positions, dtype=np.intp)
        dev_ids = ids[pos_arr]
        theta, grad, scratch, velocity = self._arenas(P)
        theta[:] = weights
        if velocity is not None:
            velocity.fill(0.0)
        self.model.bind(theta, grad)
        corr = None if corrections is None else corrections[pos_arr]
        # Each device's own batch-shuffle stream, kept live across epochs so
        # successive permutations continue the stream state exactly like the
        # sequential path does.
        gens = [
            trainer._seeds.generator(int(d), round_idx, 0) for d in dev_ids.tolist()
        ]
        starts = self.fleet.shard_starts[dev_ids]
        idx, xe, ye = self._epoch_views(P, n)
        for _ in range(e):
            for p in range(P):
                row = idx[p]
                row[:] = gens[p].permutation(n)
                row += starts[p]
            flat = idx.reshape(-1)
            np.take(self._x2d, flat, axis=0, out=xe.reshape(P * n, self._feat))
            np.take(self._y, flat, axis=0, out=ye.reshape(-1))
            for lo in range(0, n, batch):
                hi = lo + batch
                self.model.loss_and_grad(xe[:, lo:hi], ye[:, lo:hi])
                if corr is not None:
                    grad += corr
                if prox:
                    np.subtract(theta, anchor, out=scratch)
                    scratch *= mu
                    grad += scratch
                if velocity is None:
                    np.multiply(grad, eta, out=scratch)
                else:
                    velocity *= trainer.momentum
                    velocity += grad
                    np.multiply(velocity, eta, out=scratch)
                theta -= scratch
        out[pos_arr] = theta
        return e * (-(-n // batch))
