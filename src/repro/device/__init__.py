"""Device substrate: local training, resource heterogeneity, link delays.

A federated *device* couples a data shard with a compute profile.  Compute
capacity is expressed in **virtual time per local-training unit** (one unit
= ``local_epochs`` passes over the shard, the paper's 5).  The paper's
settings map directly:

* "number of epochs ... randomly distributed in [5, 50]" →
  :func:`~repro.device.heterogeneity.sample_unit_counts` with counts 1..10,
* "local training ... differs by a maximum of 10 times" → heterogeneity
  ratio ``H = t_max / t_min = 10``
  (:func:`~repro.device.heterogeneity.heterogeneity_ratio`).
"""

from repro.device.device import Device, LocalTrainer, make_devices
from repro.device.fleet import DeviceFleet, FleetDevice, FleetState, make_fleet
from repro.device.heterogeneity import (
    heterogeneity_ratio,
    sample_unit_counts,
    unit_times_from_counts,
    unit_times_from_ratio,
)
from repro.device.network import LinkDelayModel, UniformDelay

__all__ = [
    "Device",
    "DeviceFleet",
    "FleetDevice",
    "FleetState",
    "LocalTrainer",
    "make_devices",
    "make_fleet",
    "sample_unit_counts",
    "unit_times_from_counts",
    "unit_times_from_ratio",
    "heterogeneity_ratio",
    "LinkDelayModel",
    "UniformDelay",
]
